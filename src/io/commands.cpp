#include "io/commands.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>

#include "analysis/invariants.hpp"
#include "core/confidence.hpp"
#include "core/diagnostics.hpp"
#include "core/pipeline.hpp"
#include "core/planning.hpp"
#include "io/args.hpp"
#include "io/records.hpp"
#include "metrics/kendall.hpp"
#include "metrics/spearman.hpp"
#include "metrics/topk.hpp"
#include "util/build_info.hpp"
#include "util/error.hpp"
#include "util/trace.hpp"

namespace crowdrank::io {

namespace {

std::vector<const char*> to_argv(const std::vector<std::string>& args) {
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const auto& a : args) argv.push_back(a.c_str());
  return argv;
}

WorkerPoolConfig parse_quality(const Args& args) {
  WorkerPoolConfig config;
  const std::string dist = args.get_string("distribution", "gaussian");
  if (dist == "gaussian") {
    config.distribution = QualityDistribution::Gaussian;
  } else if (dist == "uniform") {
    config.distribution = QualityDistribution::Uniform;
  } else {
    throw Error("--distribution must be gaussian or uniform");
  }
  const std::string level = args.get_string("quality", "medium");
  if (level == "high") {
    config.level = QualityLevel::High;
  } else if (level == "medium") {
    config.level = QualityLevel::Medium;
  } else if (level == "low") {
    config.level = QualityLevel::Low;
  } else {
    throw Error("--quality must be high, medium, or low");
  }
  return config;
}

RankSearchMethod parse_search(const Args& args) {
  const std::string method = args.get_string("search", "saps");
  if (method == "saps") return RankSearchMethod::Saps;
  if (method == "taps") return RankSearchMethod::Taps;
  if (method == "heldkarp") return RankSearchMethod::HeldKarp;
  throw Error("--search must be saps, taps, or heldkarp");
}

int cmd_assign(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args(static_cast<int>(raw.size()), raw.data(), 2,
                  {"objects", "ratio", "budget", "reward", "replication",
                   "seed", "tasks-out"},
                  {});
  const std::size_t n = args.require_size("objects");
  const double reward = args.get_double("reward", 0.025);
  const std::size_t w = args.get_size("replication", 3);
  Rng rng(args.get_seed("seed", 42));

  BudgetModel budget = args.has("budget")
                           ? BudgetModel(args.get_double("budget", 0.0),
                                         reward, w)
                           : BudgetModel::for_selection_ratio(
                                 n, args.get_double("ratio", 0.1), reward,
                                 w);
  const auto assignment =
      generate_task_assignment(n, budget.unique_task_count(), rng);
  const std::vector<Edge> tasks(assignment.graph.edges().begin(),
                                assignment.graph.edges().end());

  out << "objects " << n << ", comparisons " << tasks.size() << " (ratio "
      << budget.selection_ratio(n) << "), degrees "
      << assignment.stats.min_degree << ".." << assignment.stats.max_degree
      << ", Pr_l " << assignment.stats.hp_likelihood_lower_bound
      << ", cost $" << budget.total_cost() << "\n";
  if (args.has("tasks-out")) {
    save_tasks(args.value("tasks-out"), tasks);
    out << "wrote " << args.value("tasks-out") << "\n";
  }
  return 0;
}

int cmd_simulate(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args(static_cast<int>(raw.size()), raw.data(), 2,
                  {"objects", "ratio", "pool", "replication", "reward",
                   "quality", "distribution", "seed", "votes-out",
                   "truth-out", "tasks-out"},
                  {});
  const std::size_t n = args.require_size("objects");
  Rng rng(args.get_seed("seed", 42));

  const auto truth_perm = rng.permutation(n);
  const Ranking truth(
      std::vector<VertexId>(truth_perm.begin(), truth_perm.end()));
  const std::size_t pool = args.get_size("pool", 30);
  const auto workers = sample_worker_pool(pool, parse_quality(args), rng);
  const BudgetModel budget = BudgetModel::for_selection_ratio(
      n, args.get_double("ratio", 0.1), args.get_double("reward", 0.025),
      args.get_size("replication", 3));
  const auto assignment =
      generate_task_assignment(n, budget.unique_task_count(), rng);
  const std::vector<Edge> tasks(assignment.graph.edges().begin(),
                                assignment.graph.edges().end());
  const HitAssignment hits(tasks, HitConfig{5, args.get_size("replication",
                                                             3)},
                           pool, rng);
  const SimulatedCrowd crowd(truth, workers);
  const VoteBatch votes = crowd.collect(hits, rng);

  out << "simulated " << votes.size() << " votes over " << tasks.size()
      << " comparisons of " << n << " objects ($" << budget.total_cost()
      << ")\n";
  if (args.has("votes-out")) {
    save_votes(args.value("votes-out"), votes);
    out << "wrote " << args.value("votes-out") << "\n";
  }
  if (args.has("truth-out")) {
    save_ranking(args.value("truth-out"), truth);
    out << "wrote " << args.value("truth-out") << "\n";
  }
  if (args.has("tasks-out")) {
    save_tasks(args.value("tasks-out"), tasks);
    out << "wrote " << args.value("tasks-out") << "\n";
  }
  return 0;
}

int cmd_infer(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args(static_cast<int>(raw.size()), raw.data(), 2,
                  {"votes", "objects", "workers", "search", "seed",
                   "ranking-out", "saps-iterations", "trace", "metrics"},
                  {"check-invariants"});
  const VoteBatch votes = load_votes(args.require_string("votes"));
  CR_EXPECTS(!votes.empty(), "votes file contains no votes");

  // Derive n and m from the data when not given.
  std::size_t max_object = 0;
  WorkerId max_worker = 0;
  for (const Vote& v : votes) {
    max_object = std::max({max_object, v.i, v.j});
    max_worker = std::max(max_worker, v.worker);
  }
  const std::size_t n = args.get_size("objects", max_object + 1);
  const std::size_t m = args.get_size("workers", max_worker + 1);

  // Observability outputs: --trace (Chrome trace-event JSON) and --metrics
  // (RunReport JSON). CROWDRANK_TRACE=path stands in for --trace when the
  // flag is absent, so traces can be pulled from wrapped invocations.
  std::string trace_path = args.get_string("trace", "");
  if (trace_path.empty()) {
    if (const char* env = std::getenv("CROWDRANK_TRACE")) {
      trace_path = env;
    }
  }
  const std::string metrics_path = args.get_string("metrics", "");
  std::unique_ptr<trace::TraceSink> sink;
  if (!trace_path.empty() || !metrics_path.empty()) {
    sink = std::make_unique<trace::TraceSink>();
  }

  InferenceConfig config;
  config.search = parse_search(args);
  config.saps.iterations =
      args.get_size("saps-iterations", config.saps.iterations);
  config.trace = sink.get();
  // Stage invariant validation: --check-invariants, or the process-wide
  // CROWDRANK_CHECK_INVARIANTS env switch (analysis/invariants.hpp).
  config.check_invariants = args.flag("check-invariants");
  const InferenceEngine engine(config);
  Rng rng(args.get_seed("seed", 1));
  const InferenceResult result = engine.infer(votes, n, m, rng);

  out << "inferred full ranking of " << n << " objects from "
      << votes.size() << " votes by " << m << " workers\n";
  if (config.check_invariants || analysis::invariant_checks_enabled()) {
    out << "invariant checks: all stage validators passed\n";
  }
  out << "truth discovery: " << result.step1.iterations << " iterations, "
      << result.one_edge_count << " 1-edges smoothed\n";
  out << "log preference probability: " << result.log_probability << "\n";
  const RankingConfidence confidence =
      ranking_confidence(result.closure, result.ranking);
  const auto tied =
      effectively_tied_groups(result.closure, result.ranking, 0.55);
  out << "boundary confidence: mean " << confidence.mean_belief << ", min "
      << confidence.min_belief << " (weakest boundary at position "
      << confidence.weakest_boundary << "); " << tied.size()
      << " groups at tie threshold 0.55\n";
  out << "ranking:";
  for (std::size_t p = 0; p < std::min<std::size_t>(n, 20); ++p) {
    out << ' ' << result.ranking.object_at(p);
  }
  if (n > 20) out << " ...";
  out << "\n";
  if (args.has("ranking-out")) {
    save_ranking(args.value("ranking-out"), result.ranking);
    out << "wrote " << args.value("ranking-out") << "\n";
  }
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    CR_EXPECTS(os.good(), "cannot open --trace output file");
    sink->write_chrome_trace(os);
    out << "wrote " << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    trace::RunReport report("crowdrank infer");
    report.note("votes_file", args.require_string("votes"));
    report.note("objects", static_cast<std::int64_t>(n));
    report.note("workers", static_cast<std::int64_t>(m));
    report.note("votes", static_cast<std::int64_t>(votes.size()));
    report.note("search", args.get_string("search", "saps"));
    report.note("seed",
                static_cast<std::int64_t>(args.get_seed("seed", 1)));
    report.note("saps_iterations",
                static_cast<std::int64_t>(config.saps.iterations));
    trace::RunReport::Run& run = report.add_run("infer");
    run.note("log_probability", result.log_probability);
    run.note("one_edges", static_cast<std::int64_t>(result.one_edge_count));
    run.note("truth_discovery_iterations",
             static_cast<std::int64_t>(result.step1.iterations));
    run.capture(*sink);
    run.capture(result.timings);
    CR_EXPECTS(report.write_file(metrics_path),
               "cannot write --metrics output file");
    out << "wrote " << metrics_path << "\n";
  }
  return 0;
}

int cmd_eval(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args(static_cast<int>(raw.size()), raw.data(), 2,
                  {"reference", "ranking", "k"}, {});
  const Ranking reference = load_ranking(args.require_string("reference"));
  const Ranking ranking = load_ranking(args.require_string("ranking"));
  CR_EXPECTS(reference.size() == ranking.size(),
             "rankings cover different object counts");

  out << "objects            : " << reference.size() << "\n";
  out << "accuracy (1 - KT)  : " << ranking_accuracy(reference, ranking)
      << "\n";
  out << "kendall tau coeff  : "
      << kendall_tau_coefficient(reference, ranking) << "\n";
  out << "spearman rho       : " << spearman_rho(reference, ranking) << "\n";
  if (args.has("k")) {
    const std::size_t k = args.get_size("k", 5);
    out << "top-" << k << " precision    : "
        << top_k_precision(reference, ranking, k) << "\n";
    out << "top-" << k << " pair accuracy: "
        << top_k_pair_accuracy(reference, ranking, k) << "\n";
  }
  return 0;
}

int cmd_diagnose(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args(static_cast<int>(raw.size()), raw.data(), 2,
                  {"votes", "objects", "workers"}, {});
  const VoteBatch votes = load_votes(args.require_string("votes"));
  CR_EXPECTS(!votes.empty(), "votes file contains no votes");
  std::size_t max_object = 0;
  WorkerId max_worker = 0;
  for (const Vote& v : votes) {
    max_object = std::max({max_object, v.i, v.j});
    max_worker = std::max(max_worker, v.worker);
  }
  const std::size_t n = args.get_size("objects", max_object + 1);
  const std::size_t m = args.get_size("workers", max_worker + 1);
  const RankabilityReport report = diagnose_votes(votes, n, m);
  out << format_report(report);
  return report.rankable ? 0 : 2;
}

int cmd_plan(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args(static_cast<int>(raw.size()), raw.data(), 2,
                  {"objects", "target", "pool", "replication", "reward",
                   "quality", "distribution", "seed"},
                  {});
  PlanningConfig config;
  config.object_count = args.require_size("objects");
  config.target_accuracy = args.get_double("target", 0.9);
  config.worker_pool_size = args.get_size("pool", 30);
  config.workers_per_task = args.get_size("replication", 3);
  config.reward_per_comparison = args.get_double("reward", 0.025);
  config.worker_quality = parse_quality(args);
  config.seed = args.get_seed("seed", 1);

  const auto plan = plan_budget_for_accuracy(config);
  if (!plan.has_value()) {
    out << "no budget reaches accuracy " << config.target_accuracy
        << " with this crowd profile (even all pairs miss it)\n";
    return 1;
  }
  out << "cheapest plan clearing accuracy " << config.target_accuracy
      << ":\n";
  out << "  selection ratio   : " << plan->selection_ratio << "\n";
  out << "  comparisons       : " << plan->unique_comparisons << "\n";
  out << "  cost              : $" << plan->total_cost << "\n";
  out << "  estimated accuracy: " << plan->estimated_accuracy << "\n";
  return 0;
}

}  // namespace

std::string cli_usage() {
  std::ostringstream usage;
  usage
      << "crowdrank — pairwise ranking aggregation by non-interactive "
         "crowdsourcing\n\n"
      << "usage: crowdrank <command> [options]\n\n"
      << "commands:\n"
      << "  assign    --objects N [--ratio R | --budget $] [--reward $]\n"
      << "            [--replication W] [--seed S] [--tasks-out F]\n"
      << "  simulate  --objects N [--ratio R] [--pool M] [--replication W]\n"
      << "            [--quality high|medium|low]\n"
      << "            [--distribution gaussian|uniform] [--seed S]\n"
      << "            [--votes-out F] [--truth-out F] [--tasks-out F]\n"
      << "  infer     --votes F [--objects N] [--workers M]\n"
      << "            [--search saps|taps|heldkarp] [--saps-iterations I]\n"
      << "            [--seed S] [--ranking-out F] [--check-invariants]\n"
      << "            [--trace F.json] [--metrics F.json]\n"
      << "            (CROWDRANK_TRACE=F.json substitutes for --trace;\n"
      << "             CROWDRANK_CHECK_INVARIANTS=1 for --check-invariants)\n"
      << "  eval      --reference F --ranking F [--k K]\n"
      << "  diagnose  --votes F [--objects N] [--workers M]\n"
      << "            (exit 0 rankable, 2 not cleanly rankable)\n"
      << "  plan      --objects N [--target A] [--pool M]\n"
      << "            [--replication W] [--reward $] [--quality ...]\n"
      << "            [--distribution ...] [--seed S]\n"
      << "  version   print build information (also --version)\n";
  return usage.str();
}

int run_cli(const std::vector<std::string>& argv, std::ostream& out,
            std::ostream& err) {
  try {
    if (argv.size() < 2) {
      err << cli_usage();
      return 1;
    }
    const std::string& command = argv[1];
    if (command == "assign") return cmd_assign(argv, out);
    if (command == "simulate") return cmd_simulate(argv, out);
    if (command == "infer") return cmd_infer(argv, out);
    if (command == "eval") return cmd_eval(argv, out);
    if (command == "plan") return cmd_plan(argv, out);
    if (command == "diagnose") return cmd_diagnose(argv, out);
    if (command == "version" || command == "--version") {
      out << build_info_string() << "\n";
      return 0;
    }
    if (command == "help" || command == "--help") {
      out << cli_usage();
      return 0;
    }
    err << "unknown command '" << command << "'\n\n" << cli_usage();
    return 1;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace crowdrank::io
