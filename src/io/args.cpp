#include "io/args.hpp"

#include <charconv>

#include "util/error.hpp"

namespace crowdrank::io {

Args::Args(int argc, const char* const* argv, int start,
           const std::set<std::string>& known_options,
           const std::set<std::string>& known_flags,
           const std::map<std::string, std::string>& aliases) {
  std::set<std::string> seen_via_alias;
  for (int i = start; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positionals_.push_back(token);
      continue;
    }
    std::string key = token.substr(2);
    if (const auto alias = aliases.find(key); alias != aliases.end()) {
      key = alias->second;
      if (values_.contains(key) || flags_.contains(key)) {
        throw Error("option --" + alias->first +
                    " conflicts with its canonical spelling --" + key);
      }
      seen_via_alias.insert(key);
    } else if (seen_via_alias.contains(key)) {
      throw Error("option --" + key +
                  " conflicts with an alias given earlier for the same "
                  "option");
    }
    if (known_flags.contains(key)) {
      flags_.insert(key);
      continue;
    }
    if (!known_options.contains(key)) {
      throw Error("unknown option --" + key);
    }
    if (i + 1 >= argc) {
      throw Error("option --" + key + " needs a value");
    }
    values_[key] = argv[++i];
  }
}

bool Args::has(const std::string& key) const { return values_.contains(key); }

bool Args::flag(const std::string& key) const { return flags_.contains(key); }

const std::string& Args::value(const std::string& key) const {
  const auto it = values_.find(key);
  CR_EXPECTS(it != values_.end(), "missing option --" + key);
  return it->second;
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  return has(key) ? value(key) : fallback;
}

std::size_t Args::get_size(const std::string& key,
                           std::size_t fallback) const {
  if (!has(key)) return fallback;
  const std::string& text = value(key);
  std::size_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw Error("option --" + key + ": invalid integer '" + text + "'");
  }
  return out;
}

double Args::get_double(const std::string& key, double fallback) const {
  if (!has(key)) return fallback;
  const std::string& text = value(key);
  try {
    std::size_t consumed = 0;
    const double out = std::stod(text, &consumed);
    if (consumed != text.size()) {
      throw Error("");
    }
    return out;
  } catch (...) {
    throw Error("option --" + key + ": invalid number '" + text + "'");
  }
}

std::uint64_t Args::get_seed(const std::string& key,
                             std::uint64_t fallback) const {
  return get_size(key, static_cast<std::size_t>(fallback));
}

std::string Args::require_string(const std::string& key) const {
  return value(key);
}

std::size_t Args::require_size(const std::string& key) const {
  CR_EXPECTS(has(key), "missing required option --" + key);
  return get_size(key, 0);
}

}  // namespace crowdrank::io
