// JSONL job records for `crowdrank serve`.
//
// A jobs file has one JSON object per line, each describing one
// RankingJob for the batch service:
//
//   {"votes": "votes.csv", "object_count": 50, "seed": 7,
//    "search": "saps", "deadline_ms": 1000}
//
// Only `votes` is required. The corresponding results file is also JSONL:
// one structured outcome object per job, in submission order, carrying
// the outcome, stage, degradation counts, timing, and (when ranked) the
// ranking itself — machine-readable end to end.
//
// The parser is a deliberately minimal flat-JSON reader (string, integer,
// and boolean values; no nesting) so the CLI carries no JSON dependency;
// malformed lines fail loudly with their line number.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "service/job.hpp"

namespace crowdrank::io {

/// One parsed jobs-file line.
struct JobRecord {
  /// Caller-chosen id echoed into the result line (0 = line number).
  std::uint64_t id = 0;
  std::string votes_path;  ///< votes.csv for this job (required)
  std::size_t object_count = 0;
  std::size_t worker_count = 0;
  std::uint64_t seed = 1;
  std::string search = "saps";  ///< saps | taps | heldkarp
  std::size_t saps_iterations = 0;  ///< 0 = pipeline default
  std::size_t deadline_ms = 0;      ///< 0 = service default
  /// Deterministic fault injection: abort the job with an injected
  /// failure when this stage is about to start (a `stage_name` string,
  /// e.g. "rank_search"; empty = no fault). Drives postmortem and
  /// degraded-path testing from plain jobs files.
  std::string fail_before;
  std::string fail_reason;  ///< reason echoed by the injected failure
};

/// Parses a whole jobs file (JSONL). Throws crowdrank::Error naming the
/// offending line on malformed input or unknown keys.
std::vector<JobRecord> parse_job_records(const std::string& text);

/// Serializes one record as a single JSON line (no trailing newline).
std::string format_job_record(const JobRecord& record);

/// Serializes one service outcome as a single JSON line (no trailing
/// newline). `include_ranking` controls whether the (possibly long)
/// ranking array is emitted for ranked outcomes.
std::string format_job_result(const service::JobResult& result,
                              bool include_ranking = true);

/// File-level conveniences.
std::vector<JobRecord> load_job_records(const std::string& path);

}  // namespace crowdrank::io
