#include "io/job_record.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <map>
#include <sstream>

#include "core/checkpoint.hpp"
#include "util/error.hpp"

namespace crowdrank::io {

namespace {

/// Scalar value of the flat-JSON reader: strings stay quoted-decoded,
/// numbers/booleans keep their raw token for typed conversion later.
struct JsonScalar {
  bool is_string = false;
  std::string text;
};

void skip_ws(const std::string& line, std::size_t& pos) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos])) != 0) {
    ++pos;
  }
}

[[noreturn]] void fail(std::size_t line_number, const std::string& what) {
  throw Error("jobs line " + std::to_string(line_number) + ": " + what);
}

std::string parse_json_string(const std::string& line, std::size_t& pos,
                              std::size_t line_number) {
  if (pos >= line.size() || line[pos] != '"') {
    fail(line_number, "expected '\"'");
  }
  ++pos;
  std::string out;
  while (pos < line.size() && line[pos] != '"') {
    char c = line[pos];
    if (c == '\\') {
      ++pos;
      if (pos >= line.size()) {
        fail(line_number, "unterminated escape");
      }
      switch (line[pos]) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case '/': c = '/'; break;
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        default:
          fail(line_number, std::string("unsupported escape '\\") +
                                line[pos] + "'");
      }
    }
    out.push_back(c);
    ++pos;
  }
  if (pos >= line.size()) {
    fail(line_number, "unterminated string");
  }
  ++pos;  // closing quote
  return out;
}

/// Parses one flat JSON object line into key -> scalar. No nesting.
std::map<std::string, JsonScalar> parse_flat_object(
    const std::string& line, std::size_t line_number) {
  std::map<std::string, JsonScalar> fields;
  std::size_t pos = 0;
  skip_ws(line, pos);
  if (pos >= line.size() || line[pos] != '{') {
    fail(line_number, "expected '{'");
  }
  ++pos;
  skip_ws(line, pos);
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
  } else {
    while (true) {
      skip_ws(line, pos);
      const std::string key = parse_json_string(line, pos, line_number);
      skip_ws(line, pos);
      if (pos >= line.size() || line[pos] != ':') {
        fail(line_number, "expected ':' after key \"" + key + "\"");
      }
      ++pos;
      skip_ws(line, pos);
      JsonScalar value;
      if (pos < line.size() && line[pos] == '"') {
        value.is_string = true;
        value.text = parse_json_string(line, pos, line_number);
      } else {
        const std::size_t start = pos;
        while (pos < line.size() && line[pos] != ',' && line[pos] != '}' &&
               std::isspace(static_cast<unsigned char>(line[pos])) == 0) {
          ++pos;
        }
        value.text = line.substr(start, pos - start);
        if (value.text.empty()) {
          fail(line_number, "missing value for key \"" + key + "\"");
        }
      }
      if (!fields.emplace(key, value).second) {
        fail(line_number, "duplicate key \"" + key + "\"");
      }
      skip_ws(line, pos);
      if (pos < line.size() && line[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < line.size() && line[pos] == '}') {
        ++pos;
        break;
      }
      fail(line_number, "expected ',' or '}'");
    }
  }
  skip_ws(line, pos);
  if (pos != line.size()) {
    fail(line_number, "trailing content after '}'");
  }
  return fields;
}

std::uint64_t to_uint(const JsonScalar& value, const std::string& key,
                      std::size_t line_number) {
  if (value.is_string) {
    fail(line_number, "key \"" + key + "\" must be a number");
  }
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(
      value.text.data(), value.text.data() + value.text.size(), out);
  if (ec != std::errc() || ptr != value.text.data() + value.text.size()) {
    fail(line_number, "key \"" + key + "\": invalid integer '" +
                          value.text + "'");
  }
  return out;
}

void append_json_string(std::ostream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

std::vector<JobRecord> parse_job_records(const std::string& text) {
  std::vector<JobRecord> records;
  std::istringstream in(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    std::size_t pos = 0;
    skip_ws(line, pos);
    if (pos == line.size()) {
      continue;  // blank line
    }
    const auto fields = parse_flat_object(line, line_number);
    JobRecord record;
    record.id = records.size() + 1;  // 1-based line ordinal by default
    for (const auto& [key, value] : fields) {
      if (key == "id") {
        record.id = to_uint(value, key, line_number);
      } else if (key == "votes") {
        if (!value.is_string) {
          fail(line_number, "key \"votes\" must be a string path");
        }
        record.votes_path = value.text;
      } else if (key == "object_count") {
        record.object_count = to_uint(value, key, line_number);
      } else if (key == "worker_count") {
        record.worker_count = to_uint(value, key, line_number);
      } else if (key == "seed") {
        record.seed = to_uint(value, key, line_number);
      } else if (key == "search") {
        if (!value.is_string) {
          fail(line_number, "key \"search\" must be a string");
        }
        record.search = value.text;
      } else if (key == "saps_iterations") {
        record.saps_iterations = to_uint(value, key, line_number);
      } else if (key == "deadline_ms") {
        record.deadline_ms = to_uint(value, key, line_number);
      } else if (key == "fail_before") {
        if (!value.is_string) {
          fail(line_number, "key \"fail_before\" must be a stage name");
        }
        if (!stage_from_name(value.text).has_value()) {
          fail(line_number,
               "key \"fail_before\": unknown stage '" + value.text + "'");
        }
        record.fail_before = value.text;
      } else if (key == "fail_reason") {
        if (!value.is_string) {
          fail(line_number, "key \"fail_reason\" must be a string");
        }
        record.fail_reason = value.text;
      } else {
        fail(line_number, "unknown key \"" + key + "\"");
      }
    }
    if (record.votes_path.empty()) {
      fail(line_number, "missing required key \"votes\"");
    }
    records.push_back(std::move(record));
  }
  return records;
}

std::string format_job_record(const JobRecord& record) {
  std::ostringstream os;
  os << "{\"id\": " << record.id << ", \"votes\": ";
  append_json_string(os, record.votes_path);
  if (record.object_count > 0) {
    os << ", \"object_count\": " << record.object_count;
  }
  if (record.worker_count > 0) {
    os << ", \"worker_count\": " << record.worker_count;
  }
  os << ", \"seed\": " << record.seed << ", \"search\": ";
  append_json_string(os, record.search);
  if (record.saps_iterations > 0) {
    os << ", \"saps_iterations\": " << record.saps_iterations;
  }
  if (record.deadline_ms > 0) {
    os << ", \"deadline_ms\": " << record.deadline_ms;
  }
  if (!record.fail_before.empty()) {
    os << ", \"fail_before\": ";
    append_json_string(os, record.fail_before);
    if (!record.fail_reason.empty()) {
      os << ", \"fail_reason\": ";
      append_json_string(os, record.fail_reason);
    }
  }
  os << "}";
  return os.str();
}

std::string format_job_result(const service::JobResult& result,
                              bool include_ranking) {
  std::ostringstream os;
  os << "{\"id\": " << result.id << ", \"outcome\": ";
  append_json_string(os, service::outcome_name(result.outcome));
  os << ", \"stage\": ";
  append_json_string(os, stage_name(result.stage));
  if (!result.reason.empty()) {
    os << ", \"reason\": ";
    append_json_string(os, result.reason);
  }
  const service::HardeningReport& h = result.hardening;
  os << ", \"input_votes\": " << h.input_votes
     << ", \"retained_votes\": " << h.retained_votes
     << ", \"dropped_out_of_range\": " << h.dropped_out_of_range
     << ", \"dropped_self\": " << h.dropped_self
     << ", \"dropped_duplicate\": " << h.dropped_duplicate
     << ", \"dropped_conflicting\": " << h.dropped_conflicting
     << ", \"dropped_disconnected\": " << h.dropped_disconnected
     << ", \"components\": " << h.component_count
     << ", \"excluded_objects\": " << h.excluded_objects.size();
  const bool ranked = result.outcome == service::JobOutcome::Completed ||
                      result.outcome == service::JobOutcome::Degraded;
  if (ranked) {
    os << ", \"log_probability\": " << result.log_probability;
    if (include_ranking) {
      os << ", \"ranking\": [";
      for (std::size_t p = 0; p < result.ranking.order.size(); ++p) {
        if (p > 0) os << ", ";
        os << result.ranking.order[p];
      }
      os << "]";
    }
  }
  os << ", \"queue_ms\": " << result.queue_ms
     << ", \"run_ms\": " << result.run_ms << "}";
  return os.str();
}

std::vector<JobRecord> load_job_records(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw Error("cannot open jobs file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_job_records(buffer.str());
}

}  // namespace crowdrank::io
