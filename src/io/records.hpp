// Typed CSV record formats for the objects the CLI exchanges.
//
// All formats have a mandatory header row (so files are self-describing
// and column order is explicit) and integer ids:
//   votes.csv     : worker,i,j,prefers_i          (prefers_i in {0,1})
//   ranking.csv   : position,object               (position 0 = best)
//   tasks.csv     : i,j                           (canonical i < j)
#pragma once

#include <string>
#include <vector>

#include "crowd/vote.hpp"
#include "graph/types.hpp"
#include "metrics/ranking.hpp"

namespace crowdrank::io {

/// Parses votes.csv. Validates the header and every field; throws
/// crowdrank::Error with the offending line number on malformed input.
VoteBatch parse_votes(const std::string& csv_text);

/// Serializes a vote batch (with header).
std::string format_votes(const VoteBatch& votes);

/// Parses ranking.csv into a Ranking (positions must be 0..n-1, objects a
/// permutation — enforced by the Ranking constructor).
Ranking parse_ranking(const std::string& csv_text);

/// Serializes a ranking (with header).
std::string format_ranking(const Ranking& ranking);

/// Parses tasks.csv into canonical edges.
std::vector<Edge> parse_tasks(const std::string& csv_text);

/// Serializes a task list (with header).
std::string format_tasks(const std::vector<Edge>& tasks);

/// File-level conveniences (load/save via io::*_csv_file).
VoteBatch load_votes(const std::string& path);
void save_votes(const std::string& path, const VoteBatch& votes);
Ranking load_ranking(const std::string& path);
void save_ranking(const std::string& path, const Ranking& ranking);
std::vector<Edge> load_tasks(const std::string& path);
void save_tasks(const std::string& path, const std::vector<Edge>& tasks);

}  // namespace crowdrank::io
