// Tiny declarative command-line argument parser for the crowdrank CLI.
//
// Supports `--key value` options and `--flag` booleans, typed accessors
// with defaults, and strict unknown-option rejection so typos fail loudly
// instead of silently running a default experiment.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace crowdrank::io {

/// Parsed command line: option map + positional arguments.
class Args {
 public:
  /// Parses argv[start..). `known_options` lists every valid --key that
  /// takes a value; `known_flags` every valid boolean --flag. `aliases`
  /// maps hidden back-compat spellings onto their canonical key (alias ->
  /// canonical); an alias is rewritten before validation and never needs
  /// to appear in the known sets. Throws crowdrank::Error on unknown
  /// options, a missing value, or an alias/canonical conflict.
  Args(int argc, const char* const* argv, int start,
       const std::set<std::string>& known_options,
       const std::set<std::string>& known_flags,
       const std::map<std::string, std::string>& aliases = {});

  bool has(const std::string& key) const;
  bool flag(const std::string& key) const;

  /// Raw value; throws when missing.
  const std::string& value(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::size_t get_size(const std::string& key, std::size_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::uint64_t get_seed(const std::string& key,
                         std::uint64_t fallback) const;

  /// Value that must be present; throws naming the option otherwise.
  std::string require_string(const std::string& key) const;
  std::size_t require_size(const std::string& key) const;

  const std::vector<std::string>& positionals() const {
    return positionals_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> flags_;
  std::vector<std::string> positionals_;
};

}  // namespace crowdrank::io
