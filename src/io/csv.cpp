#include "io/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace crowdrank::io {

CsvDocument parse_csv(const std::string& text) {
  CsvDocument doc;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;

  const std::size_t len = text.size();
  std::size_t i = 0;
  const auto end_cell = [&]() {
    row.push_back(std::move(cell));
    cell.clear();
  };
  const auto end_row = [&]() {
    end_cell();
    doc.rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };

  while (i < len) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < len && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        ++i;
        break;
      case ',':
        end_cell();
        row_has_content = true;
        ++i;
        break;
      case '\r':
        ++i;  // swallow; the \n ends the row
        break;
      case '\n':
        if (row_has_content || !cell.empty() || !row.empty()) {
          end_row();
        }
        ++i;
        break;
      default:
        cell += c;
        row_has_content = true;
        ++i;
    }
  }
  CR_EXPECTS(!in_quotes, "CSV ends inside a quoted field");
  if (row_has_content || !cell.empty() || !row.empty()) {
    end_row();
  }
  return doc;
}

CsvDocument read_csv(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

void write_csv(std::ostream& out,
               const std::vector<std::vector<std::string>>& rows) {
  const auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n\r") == std::string::npos) {
      return cell;
    }
    std::string quoted = "\"";
    for (const char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << escape(row[c]);
      if (c + 1 < row.size()) out << ',';
    }
    out << '\n';
  }
}

CsvDocument load_csv_file(const std::string& path) {
  std::ifstream in(path);
  CR_EXPECTS(in.good(), "cannot open CSV file: " + path);
  return read_csv(in);
}

void save_csv_file(const std::string& path,
                   const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  CR_EXPECTS(out.good(), "cannot write CSV file: " + path);
  write_csv(out, rows);
  CR_EXPECTS(out.good(), "write to CSV file failed: " + path);
}

}  // namespace crowdrank::io
