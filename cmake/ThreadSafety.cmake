# Clang Thread Safety Analysis wiring for the `thread-safety` preset.
#
# When CROWDRANK_THREAD_SAFETY is ON this module
#  1. verifies the compiler is clang (the analysis is a clang frontend
#     feature; the CR_ macros are no-ops everywhere else, so a GCC "build
#     with analysis" would silently check nothing — fail loudly instead),
#  2. adds -Wthread-safety -Werror=thread-safety-analysis to every target,
#  3. runs a two-sided try_compile self-check at configure time: a
#     correctly locked access must compile (positive control) and an
#     unguarded access to a CR_GUARDED_BY field must NOT (negative
#     control). A gate that cannot fail is no gate; this proves the flags
#     reach the compiler and the annotations are live.

if(NOT CROWDRANK_THREAD_SAFETY)
  return()
endif()

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(FATAL_ERROR
    "CROWDRANK_THREAD_SAFETY=ON requires clang (got "
    "'${CMAKE_CXX_COMPILER_ID}'): thread safety analysis is a clang "
    "frontend feature and the CR_ annotation macros expand to nothing on "
    "other compilers. Configure with CXX=clang++ or use the "
    "'thread-safety' preset.")
endif()

set(CROWDRANK_TSA_FLAGS -Wthread-safety -Werror=thread-safety-analysis)
add_compile_options(${CROWDRANK_TSA_FLAGS})

function(_crowdrank_tsa_try_compile out_var source)
  try_compile(${out_var}
    ${CMAKE_BINARY_DIR}/tsa_check
    ${source}
    COMPILE_DEFINITIONS "-I${CMAKE_SOURCE_DIR}/src"
    CXX_STANDARD 20
    CXX_STANDARD_REQUIRED ON
    OUTPUT_VARIABLE _tsa_output
    CMAKE_FLAGS "-DCMAKE_CXX_FLAGS=-Wthread-safety -Werror=thread-safety-analysis")
  set(${out_var} ${${out_var}} PARENT_SCOPE)
  set(_crowdrank_tsa_output "${_tsa_output}" PARENT_SCOPE)
endfunction()

_crowdrank_tsa_try_compile(CROWDRANK_TSA_POSITIVE
  ${CMAKE_SOURCE_DIR}/cmake/tsa_check_positive.cpp)
if(NOT CROWDRANK_TSA_POSITIVE)
  message(FATAL_ERROR
    "thread-safety gate self-check: the positive control (a correctly "
    "locked access to a guarded field) failed to compile, so the gate "
    "cannot distinguish real violations from toolchain breakage:\n"
    "${_crowdrank_tsa_output}")
endif()

_crowdrank_tsa_try_compile(CROWDRANK_TSA_NEGATIVE
  ${CMAKE_SOURCE_DIR}/cmake/tsa_check_negative.cpp)
if(CROWDRANK_TSA_NEGATIVE)
  message(FATAL_ERROR
    "thread-safety gate self-check: an unguarded access to a "
    "CR_GUARDED_BY field compiled cleanly under "
    "-Werror=thread-safety-analysis. The analysis flags are not reaching "
    "the compiler; refusing to configure a gate that cannot fail.")
endif()

message(STATUS
  "Thread safety analysis enabled (-Wthread-safety, violations are "
  "errors); negative-compile self-check passed")
