// Negative control for the thread-safety gate (cmake/ThreadSafety.cmake):
// an unguarded write to a CR_GUARDED_BY field. Under clang with
// -Werror=thread-safety-analysis this TU MUST fail to compile; the
// configure step verifies the failure and aborts if the write is accepted,
// proving the preset actually enforces the annotations rather than
// silently no-op'ing them.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Guarded {
 public:
  void bump_unlocked() {
    ++value_;  // BAD: guarded field touched without holding mu_
  }

 private:
  crowdrank::Mutex mu_;
  int value_ CR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.bump_unlocked();
  return 0;
}
