// Positive control for the thread-safety gate (cmake/ThreadSafety.cmake):
// a correctly locked access to a CR_GUARDED_BY field. This TU must compile
// under -Werror=thread-safety-analysis; if it does not, the toolchain (not
// the annotations) is broken and the configure step says so instead of
// reporting a bogus negative-check success.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Guarded {
 public:
  void bump() {
    crowdrank::MutexLock lock(mu_);
    ++value_;
  }

 private:
  crowdrank::Mutex mu_;
  int value_ CR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.bump();
  return 0;
}
