// Unit tests for the budget model (paper §II: l = floor(B / (w r))).
#include "crowd/budget.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/math.hpp"

namespace crowdrank {
namespace {

TEST(Budget, UniqueTaskCountFormula) {
  // B = 10, r = 0.025, w = 4 -> l = floor(10 / 0.1) = 100.
  const BudgetModel b(10.0, 0.025, 4);
  EXPECT_EQ(b.unique_task_count(), 100u);
  EXPECT_DOUBLE_EQ(b.total_cost(), 10.0);
}

TEST(Budget, FlooringDropsPartialTasks) {
  // B = 1, r = 0.3, w = 1 -> l = floor(3.33) = 3, cost 0.9 <= 1.
  const BudgetModel b(1.0, 0.3, 1);
  EXPECT_EQ(b.unique_task_count(), 3u);
  EXPECT_NEAR(b.total_cost(), 0.9, 1e-12);
  EXPECT_LE(b.total_cost(), b.budget());
}

TEST(Budget, ValidatesArguments) {
  EXPECT_THROW(BudgetModel(0.0, 0.1, 1), Error);
  EXPECT_THROW(BudgetModel(1.0, 0.0, 1), Error);
  EXPECT_THROW(BudgetModel(1.0, 0.1, 0), Error);
}

TEST(Budget, ForUniqueTasksRoundTrips) {
  const BudgetModel b = BudgetModel::for_unique_tasks(123, 0.025, 5);
  EXPECT_EQ(b.unique_task_count(), 123u);
  EXPECT_EQ(b.workers_per_task(), 5u);
  EXPECT_DOUBLE_EQ(b.reward_per_comparison(), 0.025);
}

TEST(Budget, SelectionRatioMatchesPaperExamples) {
  // n = 100, r = 0.1 -> l = 495 of C(100,2) = 4950.
  const BudgetModel b = BudgetModel::for_selection_ratio(100, 0.1, 0.025, 3);
  EXPECT_EQ(b.unique_task_count(), 495u);
  EXPECT_NEAR(b.selection_ratio(100), 0.1, 1e-9);
}

TEST(Budget, SelectionRatioOneIsAllPairs) {
  const BudgetModel b = BudgetModel::for_selection_ratio(50, 1.0, 0.025, 3);
  EXPECT_EQ(b.unique_task_count(), math::pair_count(50));
}

TEST(Budget, SelectionRatioClampedToSpanningMinimum) {
  // Tiny ratio still yields at least n-1 comparisons (connectivity floor).
  const BudgetModel b = BudgetModel::for_selection_ratio(100, 0.001, 0.025,
                                                         3);
  EXPECT_EQ(b.unique_task_count(), 99u);
}

TEST(Budget, SelectionRatioValidation) {
  EXPECT_THROW(BudgetModel::for_selection_ratio(100, 0.0, 0.025, 3), Error);
  EXPECT_THROW(BudgetModel::for_selection_ratio(100, 1.5, 0.025, 3), Error);
  EXPECT_THROW(BudgetModel::for_selection_ratio(1, 0.5, 0.025, 3), Error);
}

TEST(Budget, PlatformFeeShrinksAffordableTasks) {
  // $10 at $0.025 x 4 workers: 100 tasks fee-free, 80 at a 25% commission.
  const BudgetModel free(10.0, 0.025, 4, 0.0);
  const BudgetModel amt(10.0, 0.025, 4, 0.25);
  EXPECT_EQ(free.unique_task_count(), 100u);
  EXPECT_EQ(amt.unique_task_count(), 80u);
  EXPECT_DOUBLE_EQ(amt.cost_per_answer(), 0.03125);
  EXPECT_NEAR(amt.total_cost(), 10.0, 1e-9);
  EXPECT_NEAR(amt.total_fees(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(free.total_fees(), 0.0);
}

TEST(Budget, FeeAwareFactoriesRoundTrip) {
  const BudgetModel b = BudgetModel::for_unique_tasks(50, 0.025, 3, 0.2);
  EXPECT_EQ(b.unique_task_count(), 50u);
  EXPECT_DOUBLE_EQ(b.platform_fee_rate(), 0.2);
  const BudgetModel r =
      BudgetModel::for_selection_ratio(20, 0.5, 0.025, 3, 0.2);
  EXPECT_EQ(r.unique_task_count(), 95u);
  EXPECT_THROW(BudgetModel(1.0, 0.1, 1, -0.1), Error);
}

TEST(Budget, PaperAmtConfiguration) {
  // §VI-A3: $0.025 per comparison, w workers per HIT; verify l scales
  // inversely with w at fixed budget.
  const BudgetModel w100(100.0, 0.025, 100);
  const BudgetModel w200(100.0, 0.025, 200);
  EXPECT_EQ(w100.unique_task_count(), 2 * w200.unique_task_count());
}

}  // namespace
}  // namespace crowdrank
