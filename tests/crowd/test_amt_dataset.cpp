// Unit tests for the synthetic AMT smile-ranking dataset (§VI-A3
// substitute; DESIGN.md substitution #2).
#include "crowd/amt_dataset.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace crowdrank {
namespace {

TEST(AmtDataset, SelectsRequestedImageCount) {
  Rng rng(1);
  const AmtSmileDataset ds({.num_images = 10}, rng);
  EXPECT_EQ(ds.num_images(), 10u);
  Rng rng2(2);
  const AmtSmileDataset ds20({.num_images = 20}, rng2);
  EXPECT_EQ(ds20.num_images(), 20u);
}

TEST(AmtDataset, AdjacentRankGapsRespectPaperBound) {
  Rng rng(3);
  const AmtSmileDataset ds({.num_images = 20, .max_adjacent_gap = 46}, rng);
  const auto& pos = ds.universe_positions();
  ASSERT_EQ(pos.size(), 20u);
  for (std::size_t k = 1; k < pos.size(); ++k) {
    EXPECT_GT(pos[k], pos[k - 1]);
    EXPECT_LE(pos[k] - pos[k - 1], 46u);
  }
  EXPECT_LT(pos.back(), 1800u);
}

TEST(AmtDataset, MachineRankingOrdersByLatentScore) {
  Rng rng(4);
  const AmtSmileDataset ds({.num_images = 10}, rng);
  const Ranking& mr = ds.machine_ranking();
  for (std::size_t p = 0; p + 1 < mr.size(); ++p) {
    EXPECT_GE(ds.latent_score(mr.object_at(p)),
              ds.latent_score(mr.object_at(p + 1)));
  }
}

TEST(AmtDataset, CloseScoresProduceConflictingVotes) {
  Rng rng(5);
  const AmtSmileDataset ds({.num_images = 10, .perceptual_noise = 1.0}, rng);
  const WorkerProfile worker{0, 0.1};
  // Adjacent machine-rank images are close: votes should be genuinely
  // split (the paper selected images *because* opinions conflict).
  const VertexId a = ds.machine_ranking().object_at(4);
  const VertexId b = ds.machine_ranking().object_at(5);
  int votes_a = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    if (ds.answer(worker, a, b, rng).prefers_i) ++votes_a;
  }
  const double frac = static_cast<double>(votes_a) / trials;
  EXPECT_GT(frac, 0.5 - 0.25);  // majority can lean either way, but
  EXPECT_LT(frac, 1.0);         // never unanimity at this closeness
  EXPECT_GT(frac, 0.0);
}

TEST(AmtDataset, FarApartImagesAreEasy) {
  Rng rng(6);
  const AmtSmileDataset ds(
      {.num_images = 20, .max_adjacent_gap = 46, .perceptual_noise = 0.2},
      rng);
  const VertexId best = ds.machine_ranking().object_at(0);
  const VertexId worst = ds.machine_ranking().object_at(19);
  const WorkerProfile worker{0, 0.05};
  int votes_best = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    if (ds.answer(worker, best, worst, rng).prefers_i) ++votes_best;
  }
  EXPECT_GT(static_cast<double>(votes_best) / trials, 0.9);
}

TEST(AmtDataset, CollectCoversAssignment) {
  Rng rng(7);
  const AmtSmileDataset ds({.num_images = 10}, rng);
  std::vector<Edge> tasks;
  for (VertexId i = 0; i < 10; ++i) {
    for (VertexId j = i + 1; j < 10; ++j) {
      tasks.push_back(Edge{i, j});
    }
  }
  std::vector<WorkerProfile> pool;
  for (WorkerId k = 0; k < 6; ++k) pool.push_back({k, 0.1});
  const HitAssignment a(tasks, HitConfig{5, 3}, pool.size(), rng);
  const VoteBatch votes = ds.collect(a, pool, rng);
  EXPECT_EQ(votes.size(), tasks.size() * 3);
}

TEST(AmtDataset, ValidatesConfig) {
  Rng rng(8);
  EXPECT_THROW(AmtSmileDataset({.num_images = 1}, rng), Error);
  EXPECT_THROW(AmtSmileDataset({.num_images = 10, .max_adjacent_gap = 0},
                               rng),
               Error);
  EXPECT_THROW(AmtSmileDataset({.universe_size = 50, .num_images = 10,
                                .max_adjacent_gap = 46},
                               rng),
               Error);
  EXPECT_THROW(
      AmtSmileDataset({.num_images = 10, .perceptual_noise = 0.0}, rng),
      Error);
}

TEST(AmtDataset, DeterministicGivenSeed) {
  Rng a(9);
  Rng b(9);
  const AmtSmileDataset da({.num_images = 10}, a);
  const AmtSmileDataset db({.num_images = 10}, b);
  EXPECT_EQ(da.universe_positions(), db.universe_positions());
  EXPECT_EQ(da.machine_ranking(), db.machine_ranking());
}

}  // namespace
}  // namespace crowdrank
