// Unit tests for the non-interactive crowd simulator (paper §VI-A4).
#include "crowd/simulator.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace crowdrank {
namespace {

std::vector<WorkerProfile> fixed_pool(std::initializer_list<double> sigmas) {
  std::vector<WorkerProfile> pool;
  WorkerId id = 0;
  for (const double s : sigmas) {
    pool.push_back(WorkerProfile{id++, s});
  }
  return pool;
}

TEST(Simulator, PerfectWorkerAlwaysAgreesWithTruth) {
  const Ranking truth({2, 0, 1});  // object 2 best, then 0, then 1
  const SimulatedCrowd crowd(truth, fixed_pool({0.0}));
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const Vote v = crowd.answer(0, 2, 1, rng);
    EXPECT_TRUE(v.prefers_i);  // 2 is ranked above 1
    const Vote u = crowd.answer(0, 1, 2, rng);
    EXPECT_FALSE(u.prefers_i);
  }
}

TEST(Simulator, ErrorProbabilityZeroForPerfectWorker) {
  const Ranking truth = Ranking::identity(3);
  const SimulatedCrowd crowd(truth, fixed_pool({0.0}));
  Rng rng(2);
  EXPECT_DOUBLE_EQ(
      crowd.sample_error_probability(crowd.workers()[0], rng), 0.0);
}

TEST(Simulator, NoisyWorkerFlipRateScalesWithSigma) {
  const std::size_t n = 2;
  const Ranking truth = Ranking::identity(n);
  const auto flip_rate = [&](double sigma) {
    const SimulatedCrowd crowd(truth, fixed_pool({sigma}));
    Rng rng(42);
    int wrong = 0;
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
      if (!crowd.answer(0, 0, 1, rng).prefers_i) ++wrong;
    }
    return static_cast<double>(wrong) / trials;
  };
  const double low = flip_rate(0.05);
  const double mid = flip_rate(0.3);
  const double high = flip_rate(1.0);
  EXPECT_LT(low, 0.1);
  EXPECT_LT(low, mid);
  EXPECT_LT(mid, high);
  // E[clamp(|N(0,sigma^2)|,0,1)] for sigma=0.05 ~= 0.04.
  EXPECT_NEAR(low, 0.04, 0.01);
}

TEST(Simulator, CollectAnswersEveryAssignedTask) {
  const std::size_t n = 6;
  const Ranking truth = Ranking::identity(n);
  const auto pool = fixed_pool({0.0, 0.1, 0.2, 0.0});
  const SimulatedCrowd crowd(truth, pool);
  std::vector<Edge> tasks;
  for (VertexId i = 0; i + 1 < n; ++i) {
    tasks.push_back(Edge::canonical(i, i + 1));
  }
  Rng rng(3);
  const HitAssignment a(tasks, HitConfig{2, 3}, pool.size(), rng);
  const VoteBatch votes = crowd.collect(a, rng);
  EXPECT_EQ(votes.size(), a.total_answer_count());
  for (const Vote& v : votes) {
    EXPECT_LT(v.worker, pool.size());
    EXPECT_NE(v.i, v.j);
    EXPECT_LT(v.i, n);
    EXPECT_LT(v.j, n);
  }
}

TEST(Simulator, ValidatesConstruction) {
  const Ranking truth = Ranking::identity(3);
  EXPECT_THROW(SimulatedCrowd(truth, {}), Error);
  // Non-contiguous ids.
  std::vector<WorkerProfile> bad{{1, 0.1}};
  EXPECT_THROW(SimulatedCrowd(truth, bad), Error);
  std::vector<WorkerProfile> neg{{0, -0.1}};
  EXPECT_THROW(SimulatedCrowd(truth, neg), Error);
}

TEST(Simulator, AnswerValidatesArguments) {
  const Ranking truth = Ranking::identity(3);
  const SimulatedCrowd crowd(truth, fixed_pool({0.1}));
  Rng rng(4);
  EXPECT_THROW(crowd.answer(5, 0, 1, rng), Error);
  EXPECT_THROW(crowd.answer(0, 1, 1, rng), Error);
}

TEST(Simulator, DeterministicGivenSeed) {
  const Ranking truth = Ranking::identity(10);
  const auto pool = fixed_pool({0.3, 0.3, 0.3});
  const SimulatedCrowd crowd(truth, pool);
  std::vector<Edge> tasks{Edge{0, 1}, Edge{2, 3}, Edge{4, 5}};
  Rng rng_a(7);
  const HitAssignment aa(tasks, HitConfig{1, 2}, 3, rng_a);
  const VoteBatch va = crowd.collect(aa, rng_a);
  Rng rng_b(7);
  const HitAssignment ab(tasks, HitConfig{1, 2}, 3, rng_b);
  const VoteBatch vb = crowd.collect(ab, rng_b);
  EXPECT_EQ(va, vb);
}

}  // namespace
}  // namespace crowdrank
