// Unit tests for HIT construction and assignment (paper §II).
#include "crowd/hit.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace crowdrank {
namespace {

std::vector<Edge> chain_tasks(std::size_t n) {
  std::vector<Edge> tasks;
  for (VertexId i = 0; i + 1 < n; ++i) {
    tasks.push_back(Edge::canonical(i, i + 1));
  }
  return tasks;
}

TEST(Hit, PacksComparisonsPerHit) {
  Rng rng(1);
  const auto tasks = chain_tasks(8);  // 7 tasks
  const HitAssignment a(tasks, HitConfig{3, 2}, 10, rng);
  ASSERT_EQ(a.hits().size(), 3u);  // 3 + 3 + 1
  EXPECT_EQ(a.hits()[0].comparisons.size(), 3u);
  EXPECT_EQ(a.hits()[2].comparisons.size(), 1u);
  EXPECT_EQ(a.unique_task_count(), 7u);
}

TEST(Hit, EveryTaskGetsExactlyWDistinctWorkers) {
  Rng rng(2);
  const auto tasks = chain_tasks(20);
  const HitAssignment a(tasks, HitConfig{4, 5}, 12, rng);
  for (std::size_t t = 0; t < a.unique_task_count(); ++t) {
    const auto& workers = a.workers_for_task(t);
    EXPECT_EQ(workers.size(), 5u);
    const std::set<WorkerId> unique(workers.begin(), workers.end());
    EXPECT_EQ(unique.size(), 5u);
    for (const WorkerId k : unique) {
      EXPECT_LT(k, 12u);
    }
  }
  EXPECT_EQ(a.total_answer_count(), 19u * 5u);
}

TEST(Hit, WorkerTaskIndexIsConsistent) {
  Rng rng(3);
  const auto tasks = chain_tasks(15);
  const HitAssignment a(tasks, HitConfig{2, 3}, 8, rng);
  // Forward and reverse indexes must agree.
  for (std::size_t t = 0; t < a.unique_task_count(); ++t) {
    for (const WorkerId k : a.workers_for_task(t)) {
      const auto& wt = a.tasks_for_worker(k);
      EXPECT_NE(std::find(wt.begin(), wt.end(), t), wt.end());
    }
  }
  std::size_t total = 0;
  for (WorkerId k = 0; k < 8; ++k) {
    total += a.tasks_for_worker(k).size();
  }
  EXPECT_EQ(total, a.total_answer_count());
}

TEST(Hit, TasksInsideOneHitShareWorkers) {
  Rng rng(4);
  const auto tasks = chain_tasks(7);  // 6 tasks -> 2 HITs of 3
  const HitAssignment a(tasks, HitConfig{3, 2}, 10, rng);
  EXPECT_EQ(a.workers_for_task(0), a.workers_for_task(1));
  EXPECT_EQ(a.workers_for_task(1), a.workers_for_task(2));
}

TEST(Hit, ValidatesConfiguration) {
  Rng rng(5);
  const auto tasks = chain_tasks(5);
  EXPECT_THROW(HitAssignment({}, HitConfig{1, 1}, 5, rng), Error);
  EXPECT_THROW(HitAssignment(tasks, HitConfig{0, 1}, 5, rng), Error);
  EXPECT_THROW(HitAssignment(tasks, HitConfig{1, 0}, 5, rng), Error);
  EXPECT_THROW(HitAssignment(tasks, HitConfig{1, 6}, 5, rng), Error);  // w > m
}

TEST(Hit, IndexBoundsChecked) {
  Rng rng(6);
  const auto tasks = chain_tasks(4);
  const HitAssignment a(tasks, HitConfig{1, 2}, 5, rng);
  EXPECT_THROW(a.workers_for_task(99), Error);
  EXPECT_THROW(a.tasks_for_worker(99), Error);
}

}  // namespace
}  // namespace crowdrank
