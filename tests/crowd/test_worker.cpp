// Unit tests for the worker model (paper §VI-A4).
#include "crowd/worker.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace crowdrank {
namespace {

TEST(Worker, GaussianSigmaLevels) {
  EXPECT_DOUBLE_EQ(gaussian_sigma_s(QualityLevel::High), 0.01);
  EXPECT_DOUBLE_EQ(gaussian_sigma_s(QualityLevel::Medium), 0.1);
  EXPECT_DOUBLE_EQ(gaussian_sigma_s(QualityLevel::Low), 1.0);
}

TEST(Worker, UniformSigmaRanges) {
  EXPECT_EQ(uniform_sigma_range(QualityLevel::High),
            (std::pair<double, double>{0.0, 0.2}));
  EXPECT_EQ(uniform_sigma_range(QualityLevel::Medium),
            (std::pair<double, double>{0.1, 0.3}));
  EXPECT_EQ(uniform_sigma_range(QualityLevel::Low),
            (std::pair<double, double>{0.2, 0.4}));
}

TEST(Worker, PoolHasContiguousIdsAndNonNegativeSigma) {
  Rng rng(1);
  const auto pool = sample_worker_pool(
      50, {QualityDistribution::Gaussian, QualityLevel::Medium}, rng);
  ASSERT_EQ(pool.size(), 50u);
  for (std::size_t k = 0; k < pool.size(); ++k) {
    EXPECT_EQ(pool[k].id, k);
    EXPECT_GE(pool[k].sigma, 0.0);
  }
}

TEST(Worker, UniformPoolRespectsRange) {
  Rng rng(2);
  const auto pool = sample_worker_pool(
      200, {QualityDistribution::Uniform, QualityLevel::Low}, rng);
  for (const auto& w : pool) {
    EXPECT_GE(w.sigma, 0.2);
    EXPECT_LT(w.sigma, 0.4);
  }
}

TEST(Worker, HigherQualityLevelGivesSmallerSigmas) {
  Rng rng(3);
  const auto mean_sigma = [&](QualityLevel level) {
    Rng local(42);
    const auto pool = sample_worker_pool(
        500, {QualityDistribution::Gaussian, level}, local);
    double sum = 0.0;
    for (const auto& w : pool) sum += w.sigma;
    return sum / static_cast<double>(pool.size());
  };
  EXPECT_LT(mean_sigma(QualityLevel::High), mean_sigma(QualityLevel::Medium));
  EXPECT_LT(mean_sigma(QualityLevel::Medium), mean_sigma(QualityLevel::Low));
}

TEST(Worker, EmptyPoolRejected) {
  Rng rng(4);
  EXPECT_THROW(sample_worker_pool(0, {}, rng), Error);
}

TEST(Worker, ToStringNames) {
  EXPECT_EQ(to_string(QualityDistribution::Gaussian), "Gaussian");
  EXPECT_EQ(to_string(QualityDistribution::Uniform), "Uniform");
  EXPECT_EQ(to_string(QualityLevel::High), "high");
  EXPECT_EQ(to_string(QualityLevel::Medium), "medium");
  EXPECT_EQ(to_string(QualityLevel::Low), "low");
}

}  // namespace
}  // namespace crowdrank
