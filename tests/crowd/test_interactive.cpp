// Unit tests for the budget-metered interactive oracle (§VI-B baselines).
#include "crowd/interactive.hpp"

#include <gtest/gtest.h>

namespace crowdrank {
namespace {

SimulatedCrowd make_crowd(std::size_t n, std::size_t workers) {
  std::vector<WorkerProfile> pool;
  for (WorkerId k = 0; k < workers; ++k) {
    pool.push_back(WorkerProfile{k, 0.0});
  }
  return SimulatedCrowd(Ranking::identity(n), std::move(pool));
}

TEST(Interactive, ChargesPerAnswer) {
  const auto crowd = make_crowd(5, 3);
  Rng rng(1);
  const BudgetModel budget(1.0, 0.25, 1);  // 4 answers affordable
  InteractiveCrowd oracle(crowd, budget, rng);
  EXPECT_EQ(oracle.remaining_answers(), 4u);
  EXPECT_TRUE(oracle.query(0, 0, 1).has_value());
  EXPECT_EQ(oracle.remaining_answers(), 3u);
  EXPECT_NEAR(oracle.remaining_budget(), 0.75, 1e-12);
}

TEST(Interactive, RefusesWhenBroke) {
  const auto crowd = make_crowd(5, 2);
  Rng rng(2);
  const BudgetModel budget(0.5, 0.25, 1);  // 2 answers
  InteractiveCrowd oracle(crowd, budget, rng);
  EXPECT_TRUE(oracle.query(0, 0, 1).has_value());
  EXPECT_TRUE(oracle.query(1, 1, 2).has_value());
  EXPECT_FALSE(oracle.can_query());
  EXPECT_FALSE(oracle.query(0, 2, 3).has_value());
  EXPECT_EQ(oracle.answers_purchased(), 2u);
}

TEST(Interactive, RandomWorkerQueriesStayInPool) {
  const auto crowd = make_crowd(4, 5);
  Rng rng(3);
  const BudgetModel budget(10.0, 0.1, 1);
  InteractiveCrowd oracle(crowd, budget, rng);
  for (int i = 0; i < 50; ++i) {
    const auto vote = oracle.query_random_worker(0, 1);
    ASSERT_TRUE(vote.has_value());
    EXPECT_LT(vote->worker, 5u);
  }
}

TEST(Interactive, AnswersReflectCrowdTruth) {
  const auto crowd = make_crowd(3, 1);  // perfect worker, truth = identity
  Rng rng(4);
  const BudgetModel budget(1.0, 0.1, 1);
  InteractiveCrowd oracle(crowd, budget, rng);
  const auto vote = oracle.query(0, 0, 2);
  ASSERT_TRUE(vote.has_value());
  EXPECT_TRUE(vote->prefers_i);  // 0 ranked above 2
}

TEST(Interactive, BudgetParityWithNonInteractiveSetting) {
  // An interactive baseline given budget B must afford exactly
  // l * w answers (same dollars as the non-interactive pipeline).
  const auto crowd = make_crowd(10, 4);
  Rng rng(5);
  const BudgetModel budget = BudgetModel::for_unique_tasks(30, 0.025, 4);
  InteractiveCrowd oracle(crowd, budget, rng);
  EXPECT_EQ(oracle.remaining_answers(), 30u * 4u);
}

}  // namespace
}  // namespace crowdrank
