// Unit tests for the behavioral crowd personas.
#include "crowd/behaviors.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace crowdrank {
namespace {

SimulatedCrowd make_base(std::size_t n, std::size_t workers) {
  std::vector<WorkerProfile> pool;
  for (WorkerId k = 0; k < workers; ++k) {
    pool.push_back(WorkerProfile{k, 0.0});  // perfect when honest
  }
  return SimulatedCrowd(Ranking::identity(n), std::move(pool));
}

TEST(Behaviors, HonestDelegatesToBase) {
  const auto base = make_base(5, 3);
  const BehavioralCrowd crowd(base, {});
  Rng rng(1);
  for (int t = 0; t < 20; ++t) {
    EXPECT_TRUE(crowd.answer(0, 0, 4, rng).prefers_i);
  }
  EXPECT_EQ(crowd.behavior(0), WorkerBehavior::Honest);
  EXPECT_DOUBLE_EQ(crowd.contamination_rate(), 0.0);
}

TEST(Behaviors, AdversaryInvertsTruth) {
  const auto base = make_base(5, 3);
  const BehavioralCrowd crowd(base, {{1, WorkerBehavior::Adversary}});
  Rng rng(2);
  EXPECT_FALSE(crowd.answer(1, 0, 4, rng).prefers_i);
  EXPECT_TRUE(crowd.answer(1, 4, 0, rng).prefers_i);
  EXPECT_NEAR(crowd.contamination_rate(), 1.0 / 3.0, 1e-12);
}

TEST(Behaviors, SpammerIsUniform) {
  const auto base = make_base(4, 2);
  const BehavioralCrowd crowd(base, {{0, WorkerBehavior::Spammer}});
  Rng rng(3);
  int yes = 0;
  const int trials = 10000;
  for (int t = 0; t < trials; ++t) {
    if (crowd.answer(0, 0, 1, rng).prefers_i) ++yes;
  }
  EXPECT_NEAR(static_cast<double>(yes) / trials, 0.5, 0.03);
}

TEST(Behaviors, BiasedPersonas) {
  const auto base = make_base(6, 2);
  const BehavioralCrowd crowd(base, {{0, WorkerBehavior::FirstBiased},
                                     {1, WorkerBehavior::LowIdBiased}});
  Rng rng(4);
  // FirstBiased always prefers the first-presented object.
  EXPECT_TRUE(crowd.answer(0, 5, 1, rng).prefers_i);
  EXPECT_TRUE(crowd.answer(0, 1, 5, rng).prefers_i);
  // LowIdBiased prefers the smaller id regardless of presentation.
  EXPECT_FALSE(crowd.answer(1, 5, 1, rng).prefers_i);
  EXPECT_TRUE(crowd.answer(1, 1, 5, rng).prefers_i);
}

TEST(Behaviors, CollectMatchesAssignmentShape) {
  const auto base = make_base(8, 4);
  const BehavioralCrowd crowd(base, {{2, WorkerBehavior::Spammer}});
  std::vector<Edge> tasks{{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  Rng rng(5);
  const HitAssignment assignment(tasks, HitConfig{2, 3}, 4, rng);
  const VoteBatch votes = crowd.collect(assignment, rng);
  EXPECT_EQ(votes.size(), assignment.total_answer_count());
}

TEST(Behaviors, RejectsUnknownWorkerOverride) {
  const auto base = make_base(4, 2);
  EXPECT_THROW(BehavioralCrowd(base, {{9, WorkerBehavior::Spammer}}), Error);
}

}  // namespace
}  // namespace crowdrank
