// Corrupted-input coverage for analysis/invariants.hpp: every validator
// must (a) accept the output of a healthy pipeline stage and (b) fire with
// a message naming the offending element when fed a deliberately broken
// structure.
#include "analysis/invariants.hpp"

#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "graph/preference_graph.hpp"
#include "graph/task_graph.hpp"
#include "metrics/ranking.hpp"
#include "util/matrix.hpp"

namespace crowdrank {
namespace {

/// Runs `fn`, expecting an InvariantError; returns its message (empty when
/// nothing was thrown, which the caller then flags).
template <typename Fn>
std::string violation(Fn&& fn) {
  try {
    std::forward<Fn>(fn)();
  } catch (const analysis::InvariantError& e) {
    return e.what();
  }
  return {};
}

bool mentions(const std::string& message, const std::string& needle) {
  return message.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------- switch

TEST(InvariantSwitch, OverrideBeatsEnvironmentAndDefault) {
  analysis::set_invariant_checks(true);
  EXPECT_TRUE(analysis::invariant_checks_enabled());
  analysis::set_invariant_checks(false);
  EXPECT_FALSE(analysis::invariant_checks_enabled());
  analysis::set_invariant_checks(std::nullopt);  // back to env/build default
}

// ------------------------------------------------------------ task graph

TEST(TaskGraphInvariant, AcceptsRegularConnectedGraph) {
  TaskGraph g(4);  // 4-cycle: 2-regular, connected
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  EXPECT_NO_THROW(analysis::check_task_graph(g, 4));
}

TEST(TaskGraphInvariant, FiresOnWrongEdgeCount) {
  TaskGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::string msg =
      violation([&] { analysis::check_task_graph(g, 5); });
  EXPECT_TRUE(mentions(msg, "task_assignment")) << msg;
  EXPECT_TRUE(mentions(msg, "expected 5")) << msg;
}

TEST(TaskGraphInvariant, FiresOnIrregularDegrees) {
  // Star graph: center degree 3, leaves degree 1 — unfair (spread 2).
  TaskGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const std::string msg =
      violation([&] { analysis::check_task_graph(g, 3); });
  EXPECT_TRUE(mentions(msg, "unfair degrees")) << msg;
}

TEST(TaskGraphInvariant, FiresOnDisconnectedGraph) {
  // Two disjoint edges: perfectly 1-regular, but two components.
  TaskGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const std::string msg =
      violation([&] { analysis::check_task_graph(g, 2); });
  EXPECT_TRUE(mentions(msg, "disconnected")) << msg;
}

TEST(TaskGraphInvariant, FiresWhenIntegralDegreeTargetIsMissed) {
  // n = 4, l = 4 -> 2l/n = 2 must be exact; a path + chord has degrees
  // 1..3. (Edge count and fairness spread would alone let 2..2+1 pass.)
  TaskGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 3);
  const std::string msg =
      violation([&] { analysis::check_task_graph(g, 4); });
  EXPECT_FALSE(msg.empty());
}

// ------------------------------------------------------- truth discovery

TruthDiscoveryResult healthy_step1() {
  TruthDiscoveryResult r;
  r.truths.push_back({Edge{0, 1}, 0.8, 3});
  r.truths.push_back({Edge{1, 2}, 0.4, 3});
  r.worker_quality = {0.9, 0.7};
  r.worker_weight = {1.0, 0.5};
  return r;
}

TEST(TruthInvariant, AcceptsHealthyResult) {
  EXPECT_NO_THROW(analysis::check_truth_discovery(healthy_step1(), 3, 2));
}

TEST(TruthInvariant, FiresOnOutOfRangeTruth) {
  auto r = healthy_step1();
  r.truths[0].x = 1.5;
  const std::string msg =
      violation([&] { analysis::check_truth_discovery(r, 3, 2); });
  EXPECT_TRUE(mentions(msg, "step1_truth_discovery")) << msg;
  EXPECT_TRUE(mentions(msg, "outside [0, 1]")) << msg;
}

TEST(TruthInvariant, FiresOnNanTruth) {
  auto r = healthy_step1();
  r.truths[0].x = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(analysis::check_truth_discovery(r, 3, 2),
               analysis::InvariantError);
}

TEST(TruthInvariant, FiresOnDuplicateTask) {
  auto r = healthy_step1();
  r.truths.push_back({Edge{0, 1}, 0.2, 1});
  const std::string msg =
      violation([&] { analysis::check_truth_discovery(r, 3, 2); });
  EXPECT_TRUE(mentions(msg, "duplicated")) << msg;
}

TEST(TruthInvariant, FiresOnNonCanonicalTask) {
  auto r = healthy_step1();
  r.truths[1].task = Edge{2, 1};  // first >= second
  EXPECT_THROW(analysis::check_truth_discovery(r, 3, 2),
               analysis::InvariantError);
}

TEST(TruthInvariant, FiresOnQualityVectorProblems) {
  auto r = healthy_step1();
  r.worker_quality[1] = 1.2;
  const std::string out_of_range =
      violation([&] { analysis::check_truth_discovery(r, 3, 2); });
  EXPECT_TRUE(mentions(out_of_range, "worker 1")) << out_of_range;

  const std::string wrong_size = violation(
      [&] { analysis::check_truth_discovery(healthy_step1(), 3, 5); });
  EXPECT_TRUE(mentions(wrong_size, "expected 5")) << wrong_size;
}

TEST(TruthInvariant, FiresOnVotelessTask) {
  auto r = healthy_step1();
  r.truths[0].vote_count = 0;
  const std::string msg =
      violation([&] { analysis::check_truth_discovery(r, 3, 2); });
  EXPECT_TRUE(mentions(msg, "zero votes")) << msg;
}

// ---------------------------------------------------- preference graph

PreferenceGraph small_graph() {
  PreferenceGraph g(3);
  g.set_weight(0, 1, 0.8);
  g.set_weight(1, 0, 0.2);
  g.set_weight(1, 2, 0.6);
  g.set_weight(2, 1, 0.4);
  return g;
}

TEST(PreferenceGraphInvariant, AcceptsConsistentGraph) {
  const PreferenceGraph g = small_graph();
  EXPECT_NO_THROW(analysis::check_preference_graph(g));
}

TEST(CsrInvariant, FiresOnCorruptedWeight) {
  const PreferenceGraph g = small_graph();
  CsrAdjacency csr = g.out_csr();
  csr.weights[0] += 0.05;  // no longer mirrors the dense matrix
  const std::string msg = violation(
      [&] { analysis::check_csr_consistency(g.weights(), csr); });
  EXPECT_TRUE(mentions(msg, "disagrees with dense weight")) << msg;
}

TEST(CsrInvariant, FiresOnUnsortedNeighbors) {
  PreferenceGraph g(3);
  g.set_weight(0, 1, 0.5);
  g.set_weight(0, 2, 0.5);
  CsrAdjacency csr = g.out_csr();
  std::swap(csr.neighbors[0], csr.neighbors[1]);
  std::swap(csr.weights[0], csr.weights[1]);
  const std::string msg = violation(
      [&] { analysis::check_csr_consistency(g.weights(), csr); });
  EXPECT_TRUE(mentions(msg, "ascending")) << msg;
}

TEST(CsrInvariant, FiresOnRowCountMismatch) {
  const PreferenceGraph g = small_graph();
  CsrAdjacency csr = g.out_csr();
  csr.row_ptr[1] = 0;  // row 0 now claims zero out-edges
  EXPECT_THROW(analysis::check_csr_consistency(g.weights(), csr),
               analysis::InvariantError);
}

TEST(CsrInvariant, FiresOnTruncatedShape) {
  const PreferenceGraph g = small_graph();
  CsrAdjacency csr = g.out_csr();
  csr.neighbors.pop_back();
  const std::string msg = violation(
      [&] { analysis::check_csr_consistency(g.weights(), csr); });
  EXPECT_TRUE(mentions(msg, "CSR shape")) << msg;
}

// -------------------------------------------- sparse propagation state
// SparseMatrix::from_csr validates only what it can cheaply (shape,
// column range) and trusts the rest of its contract — exactly the gap the
// densify-boundary validators cover. The corruptions below are legal
// inputs to from_csr but violate that contract.

TEST(SparseMatrixInvariant, AcceptsHealthyMatrix) {
  Matrix dense(3, 3, 0.0);
  dense(0, 1) = 0.5;
  dense(1, 2) = 0.25;
  dense(2, 0) = 1.0;
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  EXPECT_NO_THROW(analysis::check_sparse_matrix(sparse));
  EXPECT_NO_THROW(analysis::check_sparse_dense_consistency(sparse, dense));
}

TEST(SparseMatrixInvariant, FiresOnUnsortedColumns) {
  const std::vector<std::size_t> row_ptr{0, 2};
  const std::vector<std::size_t> col_idx{2, 0};  // descending
  const std::vector<double> values{0.5, 0.25};
  const SparseMatrix corrupt =
      SparseMatrix::from_csr(1, 3, row_ptr, col_idx, values);
  const std::string msg =
      violation([&] { analysis::check_sparse_matrix(corrupt); });
  EXPECT_TRUE(mentions(msg, "ascending")) << msg;
}

TEST(SparseMatrixInvariant, FiresOnStoredZero) {
  const std::vector<std::size_t> row_ptr{0, 1};
  const std::vector<std::size_t> col_idx{1};
  const std::vector<double> values{0.0};  // stored entries must be nonzero
  const SparseMatrix corrupt =
      SparseMatrix::from_csr(1, 2, row_ptr, col_idx, values);
  const std::string msg =
      violation([&] { analysis::check_sparse_matrix(corrupt); });
  EXPECT_TRUE(mentions(msg, "zero or non-finite")) << msg;
}

TEST(SparseMatrixInvariant, FiresOnNonMonotoneRowPtr) {
  const std::vector<std::size_t> row_ptr{0, 1, 0, 1};
  const std::vector<std::size_t> col_idx{0};
  const std::vector<double> values{0.5};
  const SparseMatrix corrupt =
      SparseMatrix::from_csr(3, 2, row_ptr, col_idx, values);
  EXPECT_THROW(analysis::check_sparse_matrix(corrupt),
               analysis::InvariantError);
}

TEST(SparseDenseInvariant, FiresOnDivergedEntry) {
  Matrix dense(2, 2, 0.0);
  dense(0, 1) = 0.5;
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  dense(0, 1) = 0.75;  // dense view drifts from the sparse snapshot
  const std::string msg = violation(
      [&] { analysis::check_sparse_dense_consistency(sparse, dense); });
  EXPECT_TRUE(mentions(msg, "disagrees with stored value")) << msg;
}

TEST(SparseDenseInvariant, FiresOnExtraDenseEntry) {
  Matrix dense(2, 2, 0.0);
  dense(0, 1) = 0.5;
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  dense(1, 0) = 0.1;  // entry the sparse matrix never stored
  const std::string msg = violation(
      [&] { analysis::check_sparse_dense_consistency(sparse, dense); });
  EXPECT_TRUE(mentions(msg, "should be absent")) << msg;
}

// ------------------------------------------------------------ smoothing

TEST(SmoothingInvariant, AcceptsProperSmoothing) {
  PreferenceGraph direct(3);
  direct.set_weight(0, 1, 1.0);  // a 1-edge
  direct.set_weight(1, 2, 0.7);
  direct.set_weight(2, 1, 0.3);

  PreferenceGraph smoothed = direct;
  smoothed.set_weight(0, 1, 0.9);
  smoothed.set_weight(1, 0, 0.1);
  EXPECT_NO_THROW(
      analysis::check_smoothing(direct, smoothed, SmoothingConfig{}));
}

TEST(SmoothingInvariant, FiresWhenNonOneEdgeChanges) {
  PreferenceGraph direct(3);
  direct.set_weight(1, 2, 0.7);
  direct.set_weight(2, 1, 0.3);
  PreferenceGraph smoothed = direct;
  smoothed.set_weight(1, 2, 0.65);
  const std::string msg = violation([&] {
    analysis::check_smoothing(direct, smoothed, SmoothingConfig{});
  });
  EXPECT_TRUE(mentions(msg, "non-1-edge")) << msg;
}

TEST(SmoothingInvariant, FiresWhenOneEdgeLeftUnanimous) {
  PreferenceGraph direct(2);
  direct.set_weight(0, 1, 1.0);
  const PreferenceGraph smoothed = direct;  // smoothing "forgot" the edge
  const std::string msg = violation([&] {
    analysis::check_smoothing(direct, smoothed, SmoothingConfig{});
  });
  EXPECT_TRUE(mentions(msg, "step2_smoothing")) << msg;
}

TEST(SmoothingInvariant, FiresWhenReverseMassEscapesClamp) {
  PreferenceGraph direct(2);
  direct.set_weight(0, 1, 1.0);
  PreferenceGraph smoothed = direct;
  smoothed.set_weight(0, 1, 0.9995);
  smoothed.set_weight(1, 0, 0.0005);  // below the 1e-3 min_mass floor
  const std::string msg = violation([&] {
    analysis::check_smoothing(direct, smoothed, SmoothingConfig{});
  });
  EXPECT_TRUE(mentions(msg, "reverse mass")) << msg;
}

// -------------------------------------------------------------- closure

Matrix healthy_closure() {
  Matrix m(3, 3, 0.0);
  const auto set_pair = [&](std::size_t i, std::size_t j, double w) {
    m(i, j) = w;
    m(j, i) = 1.0 - w;
  };
  set_pair(0, 1, 0.7);
  set_pair(0, 2, 0.6);
  set_pair(1, 2, 0.55);
  return m;
}

TEST(ClosureInvariant, AcceptsPairNormalizedCompleteClosure) {
  EXPECT_NO_THROW(analysis::check_closure(healthy_closure()));
}

TEST(ClosureInvariant, FiresOnMissingPair) {
  Matrix m = healthy_closure();
  m(0, 2) = 0.0;  // evidence-free direction: completeness broken
  const std::string msg = violation([&] { analysis::check_closure(m); });
  EXPECT_TRUE(mentions(msg, "not complete")) << msg;
}

TEST(ClosureInvariant, FiresOnBrokenPairNormalization) {
  Matrix m = healthy_closure();
  m(1, 2) = 0.8;  // 0.8 + 0.45 != 1
  const std::string msg = violation([&] { analysis::check_closure(m); });
  EXPECT_TRUE(mentions(msg, "pair normalization")) << msg;
}

TEST(ClosureInvariant, FiresOnNonZeroDiagonal) {
  Matrix m = healthy_closure();
  m(1, 1) = 0.25;
  const std::string msg = violation([&] { analysis::check_closure(m); });
  EXPECT_TRUE(mentions(msg, "diagonal")) << msg;
}

TEST(StochasticInvariant, ChecksRowSums) {
  Matrix m(2, 2, 0.5);
  EXPECT_NO_THROW(analysis::check_stochastic_rows(m));
  m(0, 0) = 0.75;
  const std::string msg =
      violation([&] { analysis::check_stochastic_rows(m); });
  EXPECT_TRUE(mentions(msg, "row 0 sums to")) << msg;
}

// -------------------------------------------------------------- ranking

TEST(RankingInvariant, AcceptsPermutation) {
  const Ranking r({2, 0, 1});
  EXPECT_NO_THROW(analysis::check_ranking(r, 3));
}

TEST(RankingInvariant, FiresOnSizeMismatch) {
  const Ranking r({1, 0});
  const std::string msg =
      violation([&] { analysis::check_ranking(r, 3); });
  EXPECT_TRUE(mentions(msg, "step4_find_best_ranking")) << msg;
  EXPECT_TRUE(mentions(msg, "covers 2")) << msg;
}

// ------------------------------------------------- pipeline integration

TEST(PipelineInvariants, FullExperimentPassesWithChecksOn) {
  ExperimentConfig config;
  config.object_count = 16;
  config.selection_ratio = 0.3;
  config.seed = 11;
  config.inference.check_invariants = true;
  const ExperimentResult checked = run_experiment(config);
  analysis::check_ranking(checked.inference.ranking, config.object_count);

  // Validation is observe-only: the checked run must match an unchecked
  // one bit for bit.
  config.inference.check_invariants = false;
  analysis::set_invariant_checks(false);
  const ExperimentResult plain = run_experiment(config);
  analysis::set_invariant_checks(std::nullopt);
  EXPECT_EQ(checked.inference.ranking, plain.inference.ranking);
  EXPECT_EQ(checked.inference.log_probability,
            plain.inference.log_probability);
}

}  // namespace
}  // namespace crowdrank
