// Unit + property tests for Hamiltonian-path utilities (§III, §V-D).
#include "graph/hamiltonian.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

PreferenceGraph random_digraph(std::size_t n, double edge_prob, Rng& rng) {
  PreferenceGraph g(n);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(edge_prob)) {
        g.set_weight(i, j, rng.uniform(0.05, 1.0));
      }
    }
  }
  return g;
}

TEST(PermutationPath, Validation) {
  EXPECT_TRUE(is_permutation_path({2, 0, 1}, 3));
  EXPECT_FALSE(is_permutation_path({0, 1}, 3));
  EXPECT_FALSE(is_permutation_path({0, 0, 1}, 3));
  EXPECT_FALSE(is_permutation_path({0, 1, 3}, 3));
}

TEST(PathProbability, ProductOfWeights) {
  Matrix w(3, 3, 0.0);
  w(0, 1) = 0.5;
  w(1, 2) = 0.4;
  EXPECT_DOUBLE_EQ(path_probability(w, {0, 1, 2}), 0.2);
  EXPECT_DOUBLE_EQ(path_probability(w, {2, 1, 0}), 0.0);  // missing edges
  EXPECT_DOUBLE_EQ(path_probability(w, {0}), 1.0);        // empty product
}

TEST(PathLogCost, MatchesNegLogProbability) {
  Matrix w(3, 3, 0.0);
  w(0, 1) = 0.5;
  w(1, 2) = 0.4;
  EXPECT_NEAR(path_log_cost(w, {0, 1, 2}), -std::log(0.2), 1e-12);
  // Missing edge: huge but finite penalty.
  EXPECT_GT(path_log_cost(w, {2, 1, 0}), 700.0);
}

TEST(HpExistence, DirectedChainAndReverse) {
  PreferenceGraph g(4);
  g.set_weight(0, 1, 1.0);
  g.set_weight(1, 2, 1.0);
  g.set_weight(2, 3, 1.0);
  EXPECT_TRUE(has_hamiltonian_path(g));

  PreferenceGraph no_hp(4);
  no_hp.set_weight(0, 1, 1.0);
  no_hp.set_weight(0, 2, 1.0);
  no_hp.set_weight(0, 3, 1.0);  // star: no HP
  EXPECT_FALSE(has_hamiltonian_path(no_hp));
}

TEST(HpExistence, UndirectedTaskGraph) {
  TaskGraph path(4);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  path.add_edge(2, 3);
  EXPECT_TRUE(has_hamiltonian_path(path));

  TaskGraph star(4);
  star.add_edge(0, 1);
  star.add_edge(0, 2);
  star.add_edge(0, 3);
  EXPECT_FALSE(has_hamiltonian_path(star));
}

TEST(HpExistence, MatchesEnumerationOnRandomGraphs) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const PreferenceGraph g = random_digraph(6, 0.3, rng);
    const bool dp = has_hamiltonian_path(g);
    const bool brute = !enumerate_hamiltonian_paths(g).empty();
    EXPECT_EQ(dp, brute) << "trial " << trial;
  }
}

TEST(Enumeration, CompleteGraphHasFactorialPaths) {
  PreferenceGraph g(4);
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = 0; j < 4; ++j) {
      if (i != j) g.set_weight(i, j, 0.5);
    }
  }
  EXPECT_EQ(enumerate_hamiltonian_paths(g).size(), 24u);  // 4!
}

TEST(Enumeration, RejectsLargeGraphs) {
  PreferenceGraph g(11);
  EXPECT_THROW(enumerate_hamiltonian_paths(g), Error);
}

TEST(HeldKarp, FindsKnownOptimum) {
  // 0 -> 1 -> 2 dominates: every edge along it has the max weight.
  Matrix w(3, 3, 0.1);
  for (std::size_t i = 0; i < 3; ++i) w(i, i) = 0.0;
  w(0, 1) = 0.9;
  w(1, 2) = 0.9;
  const auto path = max_probability_hamiltonian_path(w);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (Path{0, 1, 2}));
}

TEST(HeldKarp, ReturnsNulloptWithoutHp) {
  Matrix w(3, 3, 0.0);
  w(0, 1) = 0.5;
  w(0, 2) = 0.5;  // star
  EXPECT_FALSE(max_probability_hamiltonian_path(w).has_value());
}

TEST(HeldKarp, MatchesBruteForceOnRandomGraphs) {
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const PreferenceGraph g = random_digraph(7, 0.7, rng);
    const auto dp = max_probability_hamiltonian_path(g.weights());
    const auto all = enumerate_hamiltonian_paths(g);
    if (all.empty()) {
      EXPECT_FALSE(dp.has_value()) << "trial " << trial;
      continue;
    }
    ASSERT_TRUE(dp.has_value()) << "trial " << trial;
    double best = 0.0;
    for (const Path& p : all) {
      best = std::max(best, path_probability(g.weights(), p));
    }
    EXPECT_NEAR(path_probability(g.weights(), *dp), best, 1e-12)
        << "trial " << trial;
  }
}

TEST(HeldKarp, ValidatesSize) {
  Matrix tiny(1, 1);
  EXPECT_THROW(max_probability_hamiltonian_path(tiny), Error);
  Matrix big(21, 21);
  EXPECT_THROW(max_probability_hamiltonian_path(big), Error);
  Matrix rect(3, 4);
  EXPECT_THROW(max_probability_hamiltonian_path(rect), Error);
}

}  // namespace
}  // namespace crowdrank
