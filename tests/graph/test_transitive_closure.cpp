// Unit tests for reachability and indirect-preference computation (§V-C).
#include "graph/transitive_closure.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

TEST(Reachability, ChainClosure) {
  PreferenceGraph g(4);
  g.set_weight(0, 1, 0.9);
  g.set_weight(1, 2, 0.9);
  g.set_weight(2, 3, 0.9);
  const auto closure = reachability_closure(g);
  EXPECT_TRUE(closure[0][1]);
  EXPECT_TRUE(closure[0][2]);
  EXPECT_TRUE(closure[0][3]);
  EXPECT_TRUE(closure[1][3]);
  EXPECT_FALSE(closure[3][0]);
  EXPECT_FALSE(closure[2][1]);
}

TEST(Reachability, SelfReachOnlyThroughCycles) {
  PreferenceGraph acyclic(3);
  acyclic.set_weight(0, 1, 0.5);
  const auto c1 = reachability_closure(acyclic);
  EXPECT_FALSE(c1[0][0]);

  PreferenceGraph cyclic(3);
  cyclic.set_weight(0, 1, 0.5);
  cyclic.set_weight(1, 0, 0.5);
  const auto c2 = reachability_closure(cyclic);
  EXPECT_TRUE(c2[0][0]);
  EXPECT_TRUE(c2[1][1]);
  EXPECT_FALSE(c2[2][2]);
}

TEST(ExactIndirect, SingleTwoHopPath) {
  PreferenceGraph g(3);
  g.set_weight(0, 1, 0.8);
  g.set_weight(1, 2, 0.5);
  const Matrix ind = exact_indirect_preferences(g, 2);
  EXPECT_DOUBLE_EQ(ind(0, 2), 0.4);  // 0.8 * 0.5
  EXPECT_DOUBLE_EQ(ind(0, 1), 0.0);  // direct edges excluded
  EXPECT_DOUBLE_EQ(ind(2, 0), 0.0);
}

TEST(ExactIndirect, MultiplePathsSumEqually) {
  // Two disjoint 2-hop paths from 0 to 3: via 1 and via 2.
  PreferenceGraph g(4);
  g.set_weight(0, 1, 0.5);
  g.set_weight(1, 3, 0.5);
  g.set_weight(0, 2, 0.4);
  g.set_weight(2, 3, 0.4);
  const Matrix ind = exact_indirect_preferences(g, 3);
  EXPECT_NEAR(ind(0, 3), 0.5 * 0.5 + 0.4 * 0.4, 1e-12);
}

TEST(ExactIndirect, RespectsMaxLength) {
  PreferenceGraph g(4);
  g.set_weight(0, 1, 0.9);
  g.set_weight(1, 2, 0.9);
  g.set_weight(2, 3, 0.9);
  const Matrix two = exact_indirect_preferences(g, 2);
  EXPECT_DOUBLE_EQ(two(0, 3), 0.0);  // needs 3 hops
  const Matrix three = exact_indirect_preferences(g, 3);
  EXPECT_NEAR(three(0, 3), 0.9 * 0.9 * 0.9, 1e-12);
}

TEST(ExactIndirect, SimplePathsOnlyNoRevisits) {
  // 0 <-> 1 cycle plus 1 -> 2: the walk 0->1->0->1->2 must NOT count.
  PreferenceGraph g(3);
  g.set_weight(0, 1, 0.5);
  g.set_weight(1, 0, 0.5);
  g.set_weight(1, 2, 0.5);
  const Matrix ind = exact_indirect_preferences(g, 2);
  EXPECT_DOUBLE_EQ(ind(0, 2), 0.25);  // only 0->1->2
  const Matrix longer = exact_indirect_preferences(g, 3);
  EXPECT_DOUBLE_EQ(longer(0, 2), 0.25);  // no extra simple paths exist
}

TEST(ExactIndirect, ValidatesMaxLength) {
  PreferenceGraph g(3);
  EXPECT_THROW(exact_indirect_preferences(g, 1), Error);
}

TEST(WalkIndirect, MatchesExactOnAcyclicGraphs) {
  // On a DAG every walk is a simple path, so the two definitions agree.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 6;
    PreferenceGraph g(n);
    // DAG edges only from lower to higher id.
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = i + 1; j < n; ++j) {
        if (rng.bernoulli(0.6)) {
          g.set_weight(i, j, rng.uniform(0.1, 0.9));
        }
      }
    }
    const Matrix exact = exact_indirect_preferences(g, n - 1);
    const Matrix walk = walk_indirect_preferences(g.weights(), n - 1);
    EXPECT_LT(Matrix::max_abs_diff(exact, walk), 1e-10) << "trial " << trial;
  }
}

TEST(WalkIndirect, OverestimatesOnCyclicGraphsButStaysClose) {
  // With cycles, walks revisit vertices: walk >= exact entrywise, and the
  // surplus decays with the product of sub-1 weights.
  PreferenceGraph g(3);
  g.set_weight(0, 1, 0.6);
  g.set_weight(1, 0, 0.4);
  g.set_weight(1, 2, 0.7);
  const Matrix exact = exact_indirect_preferences(g, 2);
  const Matrix walk = walk_indirect_preferences(g.weights(), 2);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GE(walk(i, j) + 1e-15, exact(i, j));
    }
  }
  // Length-2 walks from 0: 0->1->0 (revisit, lands on diagonal) and
  // 0->1->2 (simple). Off-diagonal length-2 entries agree.
  EXPECT_NEAR(walk(0, 2), exact(0, 2), 1e-12);
}

TEST(WalkIndirect, ValidatesArguments) {
  Matrix rect(2, 3);
  EXPECT_THROW(walk_indirect_preferences(rect, 3), Error);
  Matrix sq(3, 3);
  EXPECT_THROW(walk_indirect_preferences(sq, 1), Error);
}

TEST(Reachability, CsrMatchesDenseOnRandomGraphs) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(40);
    const double density = 0.02 + 0.3 * rng.uniform();
    PreferenceGraph g(n);
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = 0; j < n; ++j) {
        if (i != j && rng.bernoulli(density)) {
          g.set_weight(i, j, 0.1 + 0.9 * rng.uniform());
        }
      }
    }
    const auto sparse = reachability_closure(g);
    const auto dense = reachability_closure_dense(g);
    ASSERT_EQ(sparse, dense) << "trial " << trial << ", n = " << n;
  }
}

TEST(Reachability, CsrViewIsInvalidatedByMutation) {
  PreferenceGraph g(3);
  g.set_weight(0, 1, 0.5);
  EXPECT_EQ(g.out_csr().edge_count(), 1u);
  g.set_weight(1, 2, 0.5);
  const CsrAdjacency& csr = g.out_csr();
  EXPECT_EQ(csr.edge_count(), 2u);
  ASSERT_EQ(csr.row_ptr.size(), 4u);
  EXPECT_EQ(csr.neighbors[csr.row_ptr[1]], 2u);
  // Removing an edge (weight 0) must drop it from the rebuilt view.
  g.set_weight(0, 1, 0.0);
  EXPECT_EQ(g.out_csr().edge_count(), 1u);
}

}  // namespace
}  // namespace crowdrank
