// Unit tests for the SCC decomposition and condensation.
#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace crowdrank {
namespace {

PreferenceGraph cycle_graph(std::size_t n) {
  PreferenceGraph g(n);
  for (VertexId v = 0; v < n; ++v) {
    g.set_weight(v, (v + 1) % n, 0.9);
  }
  return g;
}

TEST(Scc, SingleCycleIsOneComponent) {
  const auto scc = strongly_connected_components(cycle_graph(5));
  EXPECT_EQ(scc.count(), 1u);
  EXPECT_EQ(scc.largest(), 5u);
  EXPECT_TRUE(scc.single_component());
}

TEST(Scc, ChainIsAllSingletons) {
  PreferenceGraph g(4);
  g.set_weight(0, 1, 0.9);
  g.set_weight(1, 2, 0.9);
  g.set_weight(2, 3, 0.9);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count(), 4u);
  EXPECT_EQ(scc.largest(), 1u);
  EXPECT_FALSE(scc.single_component());
}

TEST(Scc, EdgelessGraphIsSingletons) {
  PreferenceGraph g(3);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count(), 3u);
}

TEST(Scc, TwoCyclesJoinedByOneWayEdge) {
  // Cycle {0,1,2} -> cycle {3,4}: two components.
  PreferenceGraph g(5);
  g.set_weight(0, 1, 0.9);
  g.set_weight(1, 2, 0.9);
  g.set_weight(2, 0, 0.9);
  g.set_weight(3, 4, 0.9);
  g.set_weight(4, 3, 0.9);
  g.set_weight(2, 3, 0.9);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count(), 2u);
  EXPECT_EQ(scc.component_of[0], scc.component_of[1]);
  EXPECT_EQ(scc.component_of[3], scc.component_of[4]);
  EXPECT_NE(scc.component_of[0], scc.component_of[3]);
  // Members are complete and disjoint.
  std::set<VertexId> all;
  for (const auto& comp : scc.members) {
    for (const VertexId v : comp) {
      EXPECT_TRUE(all.insert(v).second);
    }
  }
  EXPECT_EQ(all.size(), 5u);
}

TEST(Scc, CondensationEdgesCrossComponents) {
  PreferenceGraph g(5);
  g.set_weight(0, 1, 0.9);
  g.set_weight(1, 0, 0.9);
  g.set_weight(2, 3, 0.9);
  g.set_weight(3, 2, 0.9);
  g.set_weight(1, 2, 0.9);  // crossing edge
  g.set_weight(4, 0, 0.9);  // singleton -> first cycle
  const auto scc = strongly_connected_components(g);
  const auto edges = condensation_edges(g, scc);
  EXPECT_EQ(scc.count(), 3u);
  EXPECT_EQ(edges.size(), 2u);
  for (const auto& [from, to] : edges) {
    EXPECT_NE(from, to);
  }
}

TEST(Scc, CondensationIsAcyclic) {
  // Property: the condensation of any digraph has no 2-cycles (and by
  // Tarjan ordering, every edge goes from higher id to lower id).
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    PreferenceGraph g(10);
    for (VertexId i = 0; i < 10; ++i) {
      for (VertexId j = 0; j < 10; ++j) {
        if (i != j && rng.bernoulli(0.2)) {
          g.set_weight(i, j, 0.5);
        }
      }
    }
    const auto scc = strongly_connected_components(g);
    const auto edges = condensation_edges(g, scc);
    std::set<std::pair<std::size_t, std::size_t>> edge_set(edges.begin(),
                                                           edges.end());
    for (const auto& [from, to] : edges) {
      EXPECT_FALSE(edge_set.contains({to, from}))
          << "condensation has a 2-cycle";
      EXPECT_GT(from, to) << "Tarjan order violated";
    }
  }
}

TEST(Scc, AgreesWithStrongConnectivityCheck) {
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    PreferenceGraph g(8);
    for (VertexId i = 0; i < 8; ++i) {
      for (VertexId j = 0; j < 8; ++j) {
        if (i != j && rng.bernoulli(0.3)) {
          g.set_weight(i, j, 0.5);
        }
      }
    }
    EXPECT_EQ(strongly_connected_components(g).single_component(),
              g.is_strongly_connected())
        << "trial " << trial;
  }
}

TEST(Scc, LargeGraphNoStackOverflow) {
  // A 2000-vertex directed path stresses the iterative frame stack (the
  // dense weight matrix caps how large this test can sensibly go).
  const std::size_t n = 2000;
  PreferenceGraph g(n);
  for (VertexId v = 0; v + 1 < n; ++v) {
    g.set_weight(v, v + 1, 0.9);
  }
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count(), n);
}

}  // namespace
}  // namespace crowdrank
