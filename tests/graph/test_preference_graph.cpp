// Unit tests for the preference graph (paper §III, Thm 4.3 vocabulary).
#include "graph/preference_graph.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace crowdrank {
namespace {

TEST(PreferenceGraph, StartsEmpty) {
  PreferenceGraph g(3);
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_DOUBLE_EQ(g.weight(0, 1), 0.0);
}

TEST(PreferenceGraph, WeightsValidated) {
  PreferenceGraph g(3);
  EXPECT_THROW(g.set_weight(0, 0, 0.5), Error);
  EXPECT_THROW(g.set_weight(0, 1, -0.1), Error);
  EXPECT_THROW(g.set_weight(0, 1, 1.1), Error);
  EXPECT_THROW(g.set_weight(0, 9, 0.5), Error);
  g.set_weight(0, 1, 0.7);
  EXPECT_DOUBLE_EQ(g.weight(0, 1), 0.7);
  g.set_weight(0, 1, 0.0);  // removal
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(PreferenceGraph, DirectedSemantics) {
  PreferenceGraph g(3);
  g.set_weight(0, 1, 0.9);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
  EXPECT_EQ(g.in_degree(0), 0u);
}

TEST(PreferenceGraph, InAndOutNodes) {
  // Figure 1(b) shape: v2 has only incoming edges -> in-node.
  PreferenceGraph g(4);
  g.set_weight(0, 2, 1.0);
  g.set_weight(1, 2, 1.0);
  g.set_weight(3, 0, 1.0);
  g.set_weight(3, 1, 1.0);
  EXPECT_TRUE(g.is_in_node(2));
  EXPECT_TRUE(g.is_out_node(3));
  EXPECT_FALSE(g.is_in_node(0));
  EXPECT_FALSE(g.is_out_node(0));
  EXPECT_EQ(g.in_nodes(), std::vector<VertexId>{2});
  EXPECT_EQ(g.out_nodes(), std::vector<VertexId>{3});
}

TEST(PreferenceGraph, IsolatedVertexIsNeither) {
  PreferenceGraph g(3);
  g.set_weight(0, 1, 0.6);
  EXPECT_FALSE(g.is_in_node(2));
  EXPECT_FALSE(g.is_out_node(2));
}

TEST(PreferenceGraph, OneEdgesDetected) {
  PreferenceGraph g(3);
  g.set_weight(0, 1, 1.0);
  g.set_weight(1, 2, 0.8);
  g.set_weight(2, 1, 0.2);
  const auto ones = g.one_edges();
  ASSERT_EQ(ones.size(), 1u);
  EXPECT_EQ(ones[0].first, 0u);
  EXPECT_EQ(ones[0].second, 1u);
}

TEST(PreferenceGraph, CompletenessCheck) {
  PreferenceGraph g(3);
  EXPECT_FALSE(g.is_complete());
  for (VertexId i = 0; i < 3; ++i) {
    for (VertexId j = 0; j < 3; ++j) {
      if (i != j) g.set_weight(i, j, 0.5);
    }
  }
  EXPECT_TRUE(g.is_complete());
}

TEST(PreferenceGraph, StrongConnectivity) {
  PreferenceGraph cycle(3);
  cycle.set_weight(0, 1, 0.9);
  cycle.set_weight(1, 2, 0.9);
  cycle.set_weight(2, 0, 0.9);
  EXPECT_TRUE(cycle.is_strongly_connected());

  PreferenceGraph chain(3);
  chain.set_weight(0, 1, 0.9);
  chain.set_weight(1, 2, 0.9);
  EXPECT_FALSE(chain.is_strongly_connected());

  // Bidirectional chain (what smoothing produces) is strongly connected.
  chain.set_weight(1, 0, 0.1);
  chain.set_weight(2, 1, 0.1);
  EXPECT_TRUE(chain.is_strongly_connected());
}

TEST(PreferenceGraph, EdgeCountCountsDirectedEdges) {
  PreferenceGraph g(3);
  g.set_weight(0, 1, 0.6);
  g.set_weight(1, 0, 0.4);
  g.set_weight(1, 2, 1.0);
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(PreferenceGraph, FromMatrixRoundTrip) {
  Matrix m(3, 3, 0.0);
  m(0, 1) = 0.8;
  m(1, 0) = 0.2;
  m(2, 0) = 1.0;
  const PreferenceGraph g = PreferenceGraph::from_matrix(m);
  EXPECT_DOUBLE_EQ(g.weight(0, 1), 0.8);
  EXPECT_DOUBLE_EQ(g.weight(2, 0), 1.0);
  EXPECT_LT(Matrix::max_abs_diff(g.weights(), m), 1e-15);
}

TEST(PreferenceGraph, FromMatrixValidates) {
  Matrix rect(2, 3);
  EXPECT_THROW(PreferenceGraph::from_matrix(rect), Error);
  Matrix diag(3, 3, 0.0);
  diag(1, 1) = 0.5;
  EXPECT_THROW(PreferenceGraph::from_matrix(diag), Error);
  Matrix bad(3, 3, 0.0);
  bad(0, 1) = 1.5;
  EXPECT_THROW(PreferenceGraph::from_matrix(bad), Error);
}

TEST(PreferenceGraph, RejectsTinyGraphs) {
  EXPECT_THROW(PreferenceGraph(1), Error);
}

/// Reference CSR build: the plain row-major dense scan the amortized
/// dirty-row rebuild must always agree with.
CsrAdjacency full_scan_csr(const PreferenceGraph& g) {
  const std::size_t n = g.vertex_count();
  CsrAdjacency csr;
  csr.row_ptr.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    csr.row_ptr[i] = csr.neighbors.size();
    for (std::size_t j = 0; j < n; ++j) {
      if (g.weight(i, j) > 0.0) {
        csr.neighbors.push_back(j);
        csr.weights.push_back(g.weight(i, j));
      }
    }
  }
  csr.row_ptr[n] = csr.neighbors.size();
  return csr;
}

void expect_csr_eq(const CsrAdjacency& actual, const CsrAdjacency& expected) {
  EXPECT_EQ(actual.row_ptr, expected.row_ptr);
  EXPECT_EQ(actual.neighbors, expected.neighbors);
  EXPECT_EQ(actual.weights, expected.weights);
}

TEST(PreferenceGraphCsr, DirtyRowRebuildMatchesFullScan) {
  PreferenceGraph g(10);
  for (VertexId i = 0; i + 1 < 10; ++i) {
    g.set_weight(i, i + 1, 0.8);
    g.set_weight(i + 1, i, 0.2);
  }
  expect_csr_eq(g.out_csr(), full_scan_csr(g));  // first (full) build

  // Touch a few rows between reads: add, update, and remove edges.
  g.set_weight(3, 7, 0.5);   // new edge in a clean row
  g.set_weight(4, 5, 0.65);  // update an existing edge's weight
  g.set_weight(6, 5, 0.0);   // remove an edge
  expect_csr_eq(g.out_csr(), full_scan_csr(g));

  // A second batch after the refresh, including a re-dirtied row.
  g.set_weight(3, 7, 0.0);
  g.set_weight(0, 9, 1.0);
  expect_csr_eq(g.out_csr(), full_scan_csr(g));
}

TEST(PreferenceGraphCsr, RepeatedReadsAfterMutationStayFresh) {
  // The smoothing workload: a handful of single-row writes between every
  // read. Each out_csr() must reflect all mutations so far.
  PreferenceGraph g(6);
  g.set_weight(0, 1, 1.0);
  for (int round = 0; round < 5; ++round) {
    const auto v = static_cast<VertexId>(round + 1);
    if (v + 1 < 6) {
      g.set_weight(v, v + 1, 0.5 + 0.05 * round);
    }
    g.set_weight(0, 1, 1.0 - 0.1 * round);  // same row re-dirtied each round
    expect_csr_eq(g.out_csr(), full_scan_csr(g));
  }
}

TEST(PreferenceGraphCsr, MutationBeforeFirstBuildTakesFullScanPath) {
  PreferenceGraph g(4);
  g.set_weight(0, 1, 0.9);  // no CSR exists yet: nothing to mark dirty
  g.set_weight(2, 3, 0.4);
  expect_csr_eq(g.out_csr(), full_scan_csr(g));
}

}  // namespace
}  // namespace crowdrank
