// Unit tests for the task graph (paper §III).
#include "graph/task_graph.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace crowdrank {
namespace {

TEST(TaskGraph, StartsEmpty) {
  TaskGraph g(4);
  EXPECT_EQ(g.vertex_count(), 4u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_FALSE(g.is_connected());
}

TEST(TaskGraph, RejectsTinyGraphs) {
  EXPECT_THROW(TaskGraph(0), Error);
  EXPECT_THROW(TaskGraph(1), Error);
}

TEST(TaskGraph, AddEdgeIsUndirectedAndIdempotent) {
  TaskGraph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.add_edge(1, 0));  // duplicate in reverse orientation
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(TaskGraph, RejectsSelfLoopsAndBadVertices) {
  TaskGraph g(3);
  EXPECT_THROW(g.add_edge(1, 1), Error);
  EXPECT_THROW(g.add_edge(0, 3), Error);
  EXPECT_THROW(g.degree(5), Error);
  EXPECT_THROW(g.neighbors(5), Error);
}

TEST(TaskGraph, DegreesAndNeighbors) {
  TaskGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.neighbors(0).size(), 3u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_FALSE(g.is_regular());
}

TEST(TaskGraph, TriangleIsRegularAndConnected) {
  TaskGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_TRUE(g.is_regular());
  EXPECT_TRUE(g.is_connected());
}

TEST(TaskGraph, EdgesAreCanonical) {
  TaskGraph g(3);
  g.add_edge(2, 0);
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.edges()[0].first, 0u);
  EXPECT_EQ(g.edges()[0].second, 2u);
}

TEST(TaskGraph, ConnectivityDetectsComponents) {
  TaskGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_connected());
}

TEST(TaskGraph, HamiltonianPathCheck) {
  TaskGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_TRUE(g.is_hamiltonian_path({0, 1, 2, 3}));
  EXPECT_TRUE(g.is_hamiltonian_path({3, 2, 1, 0}));
  EXPECT_FALSE(g.is_hamiltonian_path({0, 2, 1, 3}));  // missing edges
  EXPECT_FALSE(g.is_hamiltonian_path({0, 1, 2}));     // too short
  EXPECT_FALSE(g.is_hamiltonian_path({0, 1, 2, 2}));  // duplicate
  EXPECT_FALSE(g.is_hamiltonian_path({0, 1, 2, 9}));  // out of range
}

TEST(EdgeType, CanonicalOrdering) {
  const Edge e = Edge::canonical(5, 2);
  EXPECT_EQ(e.first, 2u);
  EXPECT_EQ(e.second, 5u);
  EXPECT_EQ(Edge::canonical(2, 5), e);
  EXPECT_LT(Edge::canonical(0, 1), Edge::canonical(0, 2));
}

}  // namespace
}  // namespace crowdrank
