// Executable checks of the paper's theorems (§IV) on concrete and random
// instances.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "core/task_assignment.hpp"
#include "graph/hamiltonian.hpp"
#include "graph/preference_graph.hpp"
#include "graph/task_graph.hpp"
#include "graph/transitive_closure.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

/// Random orientation instance of a task graph: each edge becomes ->, <-,
/// or (when allow_bidirectional) <-> with equal probability — the 3^l
/// instance model of Eq. 1. Theorem 4.2's implication only holds for the
/// antisymmetric instances: a <-> edge is a 2-cycle, and transitive
/// closure over cycles can manufacture Hamiltonian paths the task graph
/// never had (see Theorem42Boundary below).
PreferenceGraph random_instance(const TaskGraph& task_graph,
                                bool allow_bidirectional, Rng& rng) {
  PreferenceGraph g(task_graph.vertex_count());
  for (const Edge& e : task_graph.edges()) {
    switch (rng.uniform_index(allow_bidirectional ? 3 : 2)) {
      case 0:
        g.set_weight(e.first, e.second, 1.0);
        break;
      case 1:
        g.set_weight(e.second, e.first, 1.0);
        break;
      default:
        g.set_weight(e.first, e.second, 0.5);
        g.set_weight(e.second, e.first, 0.5);
    }
  }
  return g;
}

/// Boolean transitive closure of a preference graph as a PreferenceGraph.
PreferenceGraph closure_of(const PreferenceGraph& g) {
  const auto reach = reachability_closure(g);
  PreferenceGraph closure(g.vertex_count());
  for (VertexId i = 0; i < g.vertex_count(); ++i) {
    for (VertexId j = 0; j < g.vertex_count(); ++j) {
      if (i != j && reach[i][j]) {
        closure.set_weight(i, j, 1.0);
      }
    }
  }
  return closure;
}

TEST(Theorem42, NoTaskHpMeansNoClosureHp) {
  // Star task graphs have no HP for n >= 4; no orientation instance's
  // closure may have one.
  Rng rng(1);
  for (const std::size_t n : {4u, 5u, 6u}) {
    TaskGraph star(n);
    for (VertexId v = 1; v < n; ++v) {
      star.add_edge(0, v);
    }
    ASSERT_FALSE(has_hamiltonian_path(star));
    for (int trial = 0; trial < 30; ++trial) {
      const PreferenceGraph instance =
          random_instance(star, /*allow_bidirectional=*/false, rng);
      EXPECT_FALSE(has_hamiltonian_path(closure_of(instance)))
          << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(Theorem42Boundary, BidirectionalEdgesCanRestoreAnHp) {
  // The boundary of Thm 4.2: a star has no HP, but if one spoke carries
  // conflicting votes (a 2-cycle), the closure can chain through it.
  // Star center 0; 1 -> 0, 0 -> 2, 3 <-> 0. Closure contains 1 -> 3
  // (via 0) and 3 -> 0, so 1, 3, 0, 2 is a Hamiltonian path.
  PreferenceGraph g(4);
  g.set_weight(1, 0, 1.0);
  g.set_weight(0, 2, 1.0);
  g.set_weight(3, 0, 0.5);
  g.set_weight(0, 3, 0.5);
  EXPECT_TRUE(has_hamiltonian_path(closure_of(g)));
}

TEST(Theorem42, RandomGraphsRespectTheImplication) {
  Rng rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 6;
    TaskGraph g(n);
    // Sparse random graph: often no HP.
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = i + 1; j < n; ++j) {
        if (rng.bernoulli(0.3)) g.add_edge(i, j);
      }
    }
    if (g.edge_count() == 0 || has_hamiltonian_path(g)) continue;
    const PreferenceGraph instance =
        random_instance(g, /*allow_bidirectional=*/false, rng);
    EXPECT_FALSE(has_hamiltonian_path(closure_of(instance)));
  }
}

TEST(Theorem43, TwoInNodesForbidHp) {
  // Two in-nodes (2 and 3): both must rank last — impossible.
  PreferenceGraph g(4);
  g.set_weight(0, 2, 1.0);
  g.set_weight(1, 3, 1.0);
  g.set_weight(0, 1, 1.0);
  ASSERT_EQ(closure_of(g).in_nodes().size(), 2u);
  EXPECT_FALSE(has_hamiltonian_path(closure_of(g)));
}

TEST(Theorem43, TwoOutNodesForbidHp) {
  PreferenceGraph g(4);
  g.set_weight(2, 0, 1.0);
  g.set_weight(3, 1, 1.0);
  g.set_weight(1, 0, 1.0);
  ASSERT_GE(closure_of(g).out_nodes().size(), 2u);
  EXPECT_FALSE(has_hamiltonian_path(closure_of(g)));
}

TEST(Theorem43, HoldsOnRandomInstances) {
  Rng rng(3);
  int checked = 0;
  for (int trial = 0; trial < 200 && checked < 40; ++trial) {
    TaskGraph g(6);
    for (VertexId i = 0; i < 6; ++i) {
      for (VertexId j = i + 1; j < 6; ++j) {
        if (rng.bernoulli(0.5)) g.add_edge(i, j);
      }
    }
    if (g.edge_count() == 0) continue;
    const PreferenceGraph instance =
        random_instance(g, /*allow_bidirectional=*/true, rng);
    const PreferenceGraph closure = closure_of(instance);
    const auto ins = closure.in_nodes().size();
    const auto outs = closure.out_nodes().size();
    if (ins >= 2 || outs >= 2) {
      ++checked;
      EXPECT_FALSE(has_hamiltonian_path(closure));
    }
  }
  EXPECT_GE(checked, 10);  // the scenario must actually occur
}

TEST(Theorem44Numerics, LowerBoundIsAProbability) {
  for (std::size_t n = 2; n <= 200; n *= 2) {
    for (std::size_t d = 2; d <= 20; d += 3) {
      const double pr = hp_likelihood_lower_bound(n, d, d);
      EXPECT_GE(pr, 0.0);
      // The bracket term can push a *loose* bound above 1 for tiny n; it
      // must still be finite and monotone in d.
      EXPECT_TRUE(std::isfinite(pr));
    }
  }
}

TEST(Theorem44Numerics, MonotoneInDegree) {
  for (std::size_t d = 2; d < 15; ++d) {
    EXPECT_LE(hp_likelihood_lower_bound(50, d, d),
              hp_likelihood_lower_bound(50, d + 1, d + 1));
  }
}

TEST(Equation1, InstanceCountIsThreeToTheL) {
  // Spot-check the 3^l instance model by enumerating a 2-edge task graph's
  // orientation instances exhaustively.
  TaskGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::set<std::string> seen;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      std::string key;
      key += static_cast<char>('0' + a);
      key += static_cast<char>('0' + b);
      seen.insert(key);
    }
  }
  EXPECT_EQ(seen.size(), 9u);  // 3^2
}

}  // namespace
}  // namespace crowdrank
