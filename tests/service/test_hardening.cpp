// Unit tests for the input-hardening pass (service/hardening.hpp):
// every repair is applied, counted, and deterministic.
#include "service/hardening.hpp"

#include <gtest/gtest.h>

#include "crowd/vote.hpp"

namespace crowdrank::service {
namespace {

/// All-pairs consistent batch: every worker prefers lower ids.
VoteBatch clean_batch(std::size_t n, std::size_t workers) {
  VoteBatch votes;
  for (WorkerId w = 0; w < workers; ++w) {
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = i + 1; j < n; ++j) {
        votes.push_back(Vote{w, i, j, true});
      }
    }
  }
  return votes;
}

TEST(HardeningTest, CleanBatchPassesThroughUntouched) {
  const VoteBatch votes = clean_batch(5, 3);
  HardeningReport report;
  const HardenedBatch batch = harden_votes(votes, 5, {}, &report);

  EXPECT_TRUE(batch.usable());
  EXPECT_EQ(batch.votes, votes);  // ids already dense: identity remap
  EXPECT_EQ(batch.objects, (std::vector<VertexId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(batch.workers, (std::vector<WorkerId>{0, 1, 2}));
  EXPECT_FALSE(report.repaired());
  EXPECT_TRUE(report.full_coverage());
  EXPECT_EQ(report.retained_votes, votes.size());
  EXPECT_EQ(report.component_count, 1u);
}

TEST(HardeningTest, DropsOutOfRangeAndSelfVotes) {
  VoteBatch votes = clean_batch(4, 2);
  votes.push_back(Vote{0, 0, 9, true});  // unknown object
  votes.push_back(Vote{1, 7, 0, true});  // unknown object
  votes.push_back(Vote{0, 2, 2, true});  // self comparison
  HardeningReport report;
  const HardenedBatch batch = harden_votes(votes, 4, {}, &report);

  EXPECT_EQ(report.dropped_out_of_range, 2u);
  EXPECT_EQ(report.dropped_self, 1u);
  EXPECT_EQ(batch.votes.size(), votes.size() - 3);
  EXPECT_TRUE(report.full_coverage());
}

TEST(HardeningTest, DropsDuplicatesKeepingFirstOccurrence) {
  VoteBatch votes = clean_batch(3, 1);
  votes.push_back(Vote{0, 0, 1, true});  // repeat of the first answer
  votes.push_back(Vote{0, 1, 0, false});  // same answer, flipped spelling
  HardeningReport report;
  const HardenedBatch batch = harden_votes(votes, 3, {}, &report);

  EXPECT_EQ(report.dropped_duplicate, 2u);
  EXPECT_EQ(batch.votes.size(), clean_batch(3, 1).size());
}

TEST(HardeningTest, ConflictingAnswersDropAllVotesOnThatTask) {
  VoteBatch votes = clean_batch(3, 2);
  // Worker 0 contradicts their own (0,1) answer.
  votes.push_back(Vote{0, 0, 1, false});
  HardeningReport report;
  const HardenedBatch batch = harden_votes(votes, 3, {}, &report);

  // Both directions of worker 0's (0,1) answers are gone; worker 1's
  // votes survive, so connectivity and coverage are intact.
  EXPECT_EQ(report.dropped_conflicting, 2u);
  EXPECT_EQ(batch.votes.size(), votes.size() - 2);
  EXPECT_TRUE(report.full_coverage());
}

TEST(HardeningTest, RestrictsToLargestComponentAndCompacts) {
  // Island A = {0,1,2} (two workers), island B = {5,6} (one worker);
  // object 3 and 4 are never compared at all.
  VoteBatch votes;
  for (WorkerId w = 0; w < 2; ++w) {
    votes.push_back(Vote{w, 0, 1, true});
    votes.push_back(Vote{w, 1, 2, true});
  }
  votes.push_back(Vote{7, 5, 6, true});
  HardeningReport report;
  const HardenedBatch batch = harden_votes(votes, 7, {}, &report);

  EXPECT_EQ(report.component_count, 2u);
  EXPECT_EQ(report.dropped_disconnected, 1u);
  EXPECT_EQ(batch.objects, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(report.excluded_objects, (std::vector<VertexId>{3, 4, 5, 6}));
  // Worker ids are compacted in ascending order of the original id.
  EXPECT_EQ(batch.workers, (std::vector<WorkerId>{0, 1}));
  for (const Vote& v : batch.votes) {
    EXPECT_LT(v.i, batch.objects.size());
    EXPECT_LT(v.j, batch.objects.size());
    EXPECT_LT(v.worker, batch.workers.size());
  }
}

TEST(HardeningTest, LargestComponentTieBreaksTowardSmallestMember) {
  // Two components of equal size; {0,1} must win over {2,3}.
  VoteBatch votes{Vote{0, 2, 3, true}, Vote{0, 0, 1, true}};
  HardeningReport report;
  const HardenedBatch batch = harden_votes(votes, 4, {}, &report);
  EXPECT_EQ(batch.objects, (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(report.excluded_objects, (std::vector<VertexId>{2, 3}));
}

TEST(HardeningTest, DerivesObjectUniverseFromVoteIds) {
  VoteBatch votes{Vote{0, 3, 7, true}, Vote{0, 7, 3, false}};
  HardeningReport report;
  const HardenedBatch batch = harden_votes(votes, 0, {}, &report);
  EXPECT_EQ(report.requested_objects, 8u);
  EXPECT_EQ(batch.objects, (std::vector<VertexId>{3, 7}));
  // The flipped spelling is the same answer: one duplicate dropped.
  EXPECT_EQ(report.dropped_duplicate, 1u);
  EXPECT_TRUE(batch.usable());
}

TEST(HardeningTest, EmptyAndUnusableBatches) {
  HardeningReport report;
  EXPECT_FALSE(harden_votes({}, 5, {}, &report).usable());
  EXPECT_EQ(report.retained_votes, 0u);

  // Only self votes: nothing usable survives.
  const VoteBatch selfs{Vote{0, 1, 1, true}, Vote{1, 2, 2, false}};
  EXPECT_FALSE(harden_votes(selfs, 5, {}, &report).usable());
  EXPECT_EQ(report.dropped_self, 2u);
}

TEST(HardeningTest, PolicySwitchesDisableIndividualRepairs) {
  VoteBatch votes = clean_batch(3, 1);
  votes.push_back(Vote{0, 0, 1, true});  // duplicate
  HardeningPolicy policy;
  policy.drop_duplicates = false;
  HardeningReport report;
  const HardenedBatch batch = harden_votes(votes, 3, policy, &report);
  EXPECT_EQ(report.dropped_duplicate, 0u);
  EXPECT_EQ(batch.votes.size(), votes.size());
}

TEST(HardeningTest, DeterministicAcrossRepeatedRuns) {
  VoteBatch votes = clean_batch(6, 3);
  votes.push_back(Vote{0, 0, 11, true});
  votes.push_back(Vote{2, 4, 4, true});
  votes.push_back(Vote{1, 0, 1, false});  // conflict with clean batch
  HardeningReport first_report;
  const HardenedBatch first = harden_votes(votes, 6, {}, &first_report);
  HardeningReport second_report;
  const HardenedBatch second = harden_votes(votes, 6, {}, &second_report);
  EXPECT_EQ(first.votes, second.votes);
  EXPECT_EQ(first.objects, second.objects);
  EXPECT_EQ(first.workers, second.workers);
  EXPECT_EQ(first_report.excluded_objects, second_report.excluded_objects);
}

}  // namespace
}  // namespace crowdrank::service
