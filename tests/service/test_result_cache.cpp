// The content-addressed result cache (service/result_cache.hpp): key
// derivation sensitivity, the strict LRU memory bound, the disk tier's
// persistence across cache instances, and corruption handling (a damaged
// artifact is a miss, never an exception).
#include "service/result_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "core/pipeline.hpp"
#include "crowd/vote.hpp"
#include "service/artifact.hpp"
#include "util/metrics.hpp"

namespace crowdrank::service {
namespace {

namespace fs = std::filesystem;

VoteBatch sample_votes() {
  VoteBatch votes;
  votes.push_back({0, 0, 1, true});
  votes.push_back({1, 1, 2, false});
  votes.push_back({2, 0, 2, true});
  return votes;
}

const HardeningPolicy kPolicy{};

CacheKey key_for(const VoteBatch& votes, std::uint64_t seed = 1) {
  return compute_cache_key(votes, 3, 3, seed, InferenceConfig{},
                           /*repair=*/true, &kPolicy);
}

CachedResult result_with(double log_probability) {
  CachedResult result;
  result.outcome = JobOutcome::Completed;
  result.stage = PipelineStage::Done;
  result.ranking.order = {2, 0, 1};
  result.log_probability = log_probability;
  return result;
}

/// RAII temp dir for disk-tier tests.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("crowdrank_cache_test_" +
            std::to_string(
                reinterpret_cast<std::uintptr_t>(this)));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

// -- key derivation ------------------------------------------------------

TEST(CacheKey, IsDeterministic) {
  EXPECT_EQ(key_for(sample_votes()), key_for(sample_votes()));
}

TEST(CacheKey, VoteOrderMatters) {
  // The engine consumes votes in batch order, so a reordered batch is
  // different work — the key must not canonicalize it away.
  VoteBatch reordered = sample_votes();
  std::swap(reordered[0], reordered[2]);
  EXPECT_NE(key_for(sample_votes()), key_for(reordered));
}

TEST(CacheKey, EveryOutputAffectingInputPerturbsTheKey) {
  const VoteBatch votes = sample_votes();
  const CacheKey base = key_for(votes);
  EXPECT_NE(key_for(votes, /*seed=*/2), base);
  EXPECT_NE(compute_cache_key(votes, 4, 3, 1, InferenceConfig{}, true,
                              &kPolicy),
            base);
  EXPECT_NE(compute_cache_key(votes, 3, 4, 1, InferenceConfig{}, true,
                              &kPolicy),
            base);
  EXPECT_NE(compute_cache_key(votes, 3, 3, 1, InferenceConfig{}, false,
                              &kPolicy),
            base);
  InferenceConfig taps;
  taps.search = RankSearchMethod::Taps;
  EXPECT_NE(compute_cache_key(votes, 3, 3, 1, taps, true, &kPolicy),
            base);
  InferenceConfig iterations;
  iterations.saps.iterations += 1;
  EXPECT_NE(compute_cache_key(votes, 3, 3, 1, iterations, true, &kPolicy),
            base);
  HardeningPolicy lenient;
  lenient.drop_conflicting = false;
  EXPECT_NE(compute_cache_key(votes, 3, 3, 1, InferenceConfig{}, true,
                              &lenient),
            base);
}

TEST(CacheKey, StrictPathIgnoresTheHardeningPolicy) {
  // Hardening never runs when repair is false, so the policy is not
  // content there: any policy — or none at all, which is all RankParams
  // requires of strict-path callers — derives the same key.
  const VoteBatch votes = sample_votes();
  const CacheKey strict = compute_cache_key(
      votes, 3, 3, 1, InferenceConfig{}, /*repair=*/false, nullptr);
  HardeningPolicy lenient;
  lenient.drop_conflicting = false;
  EXPECT_EQ(compute_cache_key(votes, 3, 3, 1, InferenceConfig{}, false,
                              &lenient),
            strict);
  EXPECT_EQ(compute_cache_key(votes, 3, 3, 1, InferenceConfig{}, false,
                              &kPolicy),
            strict);
}

TEST(CacheKey, RepresentationOnlyKnobsDoNotPerturbTheKey) {
  // fill_threshold only picks the sparse-vs-dense execution strategy of
  // propagation; results are pinned bitwise-identical across it, so two
  // configs differing only there are the same work.
  const VoteBatch votes = sample_votes();
  InferenceConfig config;
  config.propagation.fill_threshold = 0.123;
  EXPECT_EQ(compute_cache_key(votes, 3, 3, 1, config, true, &kPolicy),
            key_for(votes));
  // Observability hooks are not content either.
  InferenceConfig checked;
  checked.check_invariants = true;
  EXPECT_EQ(compute_cache_key(votes, 3, 3, 1, checked, true, &kPolicy),
            key_for(votes));
}

// -- memory tier ---------------------------------------------------------

TEST(ResultCache, MissThenHit) {
  ResultCache cache;
  const CacheKey key = key_for(sample_votes());
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, result_with(-1.5));
  const std::optional<CachedResult> hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, result_with(-1.5));
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ResultCache, InsertOverwritesExistingKey) {
  ResultCache cache;
  const CacheKey key = key_for(sample_votes());
  cache.insert(key, result_with(-1.0));
  cache.insert(key, result_with(-2.0));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.lookup(key)->log_probability, -2.0);
}

TEST(ResultCache, CapacityIsAStrictBound) {
  ResultCacheConfig config;
  config.capacity = 3;
  ResultCache cache(config);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    cache.insert(key_for(sample_votes(), seed), result_with(-1.0));
    EXPECT_LE(cache.size(), 3u);
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 7u);
}

TEST(ResultCache, EvictionIsLeastRecentlyUsed) {
  ResultCacheConfig config;
  config.capacity = 2;
  ResultCache cache(config);
  const CacheKey a = key_for(sample_votes(), 1);
  const CacheKey b = key_for(sample_votes(), 2);
  const CacheKey c = key_for(sample_votes(), 3);
  cache.insert(a, result_with(-1.0));
  cache.insert(b, result_with(-2.0));
  // Touch a so b becomes the LRU entry; inserting c must evict b.
  EXPECT_TRUE(cache.lookup(a).has_value());
  cache.insert(c, result_with(-3.0));
  EXPECT_TRUE(cache.lookup(a).has_value());
  EXPECT_FALSE(cache.lookup(b).has_value());
  EXPECT_TRUE(cache.lookup(c).has_value());
}

TEST(ResultCache, MetricsLandOnTheConfiguredRegistry) {
  metrics::Registry registry;
  ResultCacheConfig config;
  config.capacity = 1;
  config.metrics = &registry;
  ResultCache cache(config);
  const CacheKey a = key_for(sample_votes(), 1);
  const CacheKey b = key_for(sample_votes(), 2);
  cache.lookup(a);                      // miss
  cache.insert(a, result_with(-1.0));   // insert
  cache.lookup(a);                      // hit
  cache.insert(b, result_with(-2.0));   // insert + eviction
  const auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [counter_name, value] : registry.counters()) {
      if (counter_name == name) return value;
    }
    return 0;
  };
  EXPECT_EQ(counter("service.cache.miss"), 1u);
  EXPECT_EQ(counter("service.cache.hit"), 1u);
  EXPECT_EQ(counter("service.cache.insert"), 2u);
  EXPECT_EQ(counter("service.cache.eviction"), 1u);
}

// -- disk tier -----------------------------------------------------------

TEST(ResultCacheDisk, PersistsAcrossCacheInstances) {
  const TempDir dir;
  const CacheKey key = key_for(sample_votes());
  {
    ResultCacheConfig config;
    config.disk_dir = dir.str();
    ResultCache writer(config);
    writer.insert(key, result_with(-4.0));
    EXPECT_EQ(writer.stats().disk_writes, 1u);
  }
  // A fresh cache (fresh process, conceptually) finds the artifact.
  ResultCacheConfig config;
  config.disk_dir = dir.str();
  ResultCache reader(config);
  const std::optional<CachedResult> hit = reader.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, result_with(-4.0));
  const CacheStats stats = reader.stats();
  EXPECT_EQ(stats.disk_hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  // The disk hit was promoted: the next lookup is a memory hit.
  reader.lookup(key);
  EXPECT_EQ(reader.stats().hits, 1u);
}

TEST(ResultCacheDisk, ArtifactPathIsKeyHex) {
  const TempDir dir;
  const CacheKey key = key_for(sample_votes());
  ResultCacheConfig config;
  config.disk_dir = dir.str();
  ResultCache cache(config);
  cache.insert(key, result_with(-1.0));
  const std::string path = ResultCache::artifact_path(dir.str(), key);
  EXPECT_TRUE(fs::exists(path)) << path;
  EXPECT_NE(path.find(key.hex() + ".crart"), std::string::npos);
  // And it is a well-formed RankedResult artifact.
  const auto bytes = artifact::read_file(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_TRUE(artifact::decode_result(*bytes.value).ok());
}

TEST(ResultCacheDisk, CorruptedArtifactIsAMissNotAnError) {
  const TempDir dir;
  const CacheKey key = key_for(sample_votes());
  {
    ResultCacheConfig config;
    config.disk_dir = dir.str();
    ResultCache writer(config);
    writer.insert(key, result_with(-4.0));
  }
  // Flip one byte in the stored artifact.
  const std::string path = ResultCache::artifact_path(dir.str(), key);
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(30);
    const char byte = static_cast<char>(file.get() ^ 0x01);
    file.seekp(30);
    file.put(byte);
  }
  ResultCacheConfig config;
  config.disk_dir = dir.str();
  ResultCache reader(config);
  EXPECT_FALSE(reader.lookup(key).has_value());
  const CacheStats stats = reader.stats();
  EXPECT_EQ(stats.disk_errors, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ResultCacheDisk, EvictionNeverDeletesArtifacts) {
  const TempDir dir;
  ResultCacheConfig config;
  config.capacity = 1;
  config.disk_dir = dir.str();
  ResultCache cache(config);
  const CacheKey a = key_for(sample_votes(), 1);
  const CacheKey b = key_for(sample_votes(), 2);
  cache.insert(a, result_with(-1.0));
  cache.insert(b, result_with(-2.0));  // evicts a from memory
  EXPECT_EQ(cache.size(), 1u);
  // a still lives on disk and can be served (as a disk hit).
  EXPECT_TRUE(fs::exists(ResultCache::artifact_path(dir.str(), a)));
  ASSERT_TRUE(cache.lookup(a).has_value());
  EXPECT_EQ(cache.stats().disk_hits, 1u);
}

}  // namespace
}  // namespace crowdrank::service
