// The versioned artifact codec (service/artifact.hpp): round-trips for
// every kind, byte-exact golden files pinning the on-disk format, and the
// structured-rejection matrix (truncation, bit flips, version bumps,
// kind confusion, payload garbage). Readers must never throw: every
// corruption comes back as an ArtifactError.
//
// Golden files live in tests/data/ and are compared byte-for-byte: the
// format is persistence, so "same logical value, different bytes" is a
// breaking change. Regenerate deliberately with
// CROWDRANK_UPDATE_GOLDEN=1 (and bump the schema constants when the
// layout really changed).
#include "service/artifact.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "crowd/vote.hpp"
#include "graph/preference_graph.hpp"
#include "graph/task_graph.hpp"
#include "util/matrix.hpp"
#include "util/sparse_matrix.hpp"

namespace crowdrank::service::artifact {
namespace {

namespace fs = std::filesystem;

// -- fixtures ------------------------------------------------------------

VoteBatch sample_votes() {
  VoteBatch votes;
  votes.push_back({0, 0, 1, true});
  votes.push_back({1, 1, 2, false});
  votes.push_back({2, 0, 2, true});
  votes.push_back({0, 2, 3, false});
  return votes;
}

TaskGraph sample_task_graph() {
  TaskGraph graph(4);
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  graph.add_edge(0, 3);
  return graph;
}

PreferenceGraph sample_preference_graph() {
  PreferenceGraph graph(3);
  graph.set_weight(0, 1, 0.75);
  graph.set_weight(1, 0, 0.25);
  graph.set_weight(1, 2, 1.0);
  return graph;
}

SparseMatrix sample_sparse() {
  const std::vector<std::size_t> row_ptr{0, 2, 3, 3};
  const std::vector<std::size_t> col_idx{0, 2, 1};
  const std::vector<double> values{1.5, -2.0, 0.125};
  return SparseMatrix::from_csr(3, 3, row_ptr, col_idx, values);
}

Matrix sample_matrix() {
  Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(0, 2) = -0.5;
  m(1, 1) = 3.25;
  return m;
}

RankedResult sample_result() {
  RankedResult result;
  result.outcome = JobOutcome::Degraded;
  result.stage = PipelineStage::Done;
  result.reason = "partial ranking";
  result.ranking.order = {3, 0, 2};
  result.ranking.excluded = {1};
  result.hardening.input_votes = 10;
  result.hardening.retained_votes = 8;
  result.hardening.dropped_out_of_range = 1;
  result.hardening.dropped_self = 1;
  result.log_probability = -2.5;
  return result;
}

// -- round trips ---------------------------------------------------------

TEST(Artifact, VoteBatchRoundTrips) {
  const VoteBatch votes = sample_votes();
  const Result<VoteBatch> back = decode_votes(encode(votes));
  ASSERT_TRUE(back.ok()) << back.error.to_string();
  ASSERT_EQ(back.value->size(), votes.size());
  for (std::size_t k = 0; k < votes.size(); ++k) {
    EXPECT_EQ((*back.value)[k].worker, votes[k].worker);
    EXPECT_EQ((*back.value)[k].i, votes[k].i);
    EXPECT_EQ((*back.value)[k].j, votes[k].j);
    EXPECT_EQ((*back.value)[k].prefers_i, votes[k].prefers_i);
  }
}

TEST(Artifact, EmptyVoteBatchRoundTrips) {
  const Result<VoteBatch> back = decode_votes(encode(VoteBatch{}));
  ASSERT_TRUE(back.ok()) << back.error.to_string();
  EXPECT_TRUE(back.value->empty());
}

TEST(Artifact, TaskGraphRoundTrips) {
  const TaskGraph graph = sample_task_graph();
  const Result<TaskGraph> back = decode_task_graph(encode(graph));
  ASSERT_TRUE(back.ok()) << back.error.to_string();
  EXPECT_EQ(back.value->vertex_count(), graph.vertex_count());
  ASSERT_EQ(back.value->edge_count(), graph.edge_count());
  for (std::size_t k = 0; k < graph.edges().size(); ++k) {
    EXPECT_EQ(back.value->edges()[k], graph.edges()[k]);
  }
}

TEST(Artifact, PreferenceGraphRoundTrips) {
  const PreferenceGraph graph = sample_preference_graph();
  const Result<PreferenceGraph> back =
      decode_preference_graph(encode(graph));
  ASSERT_TRUE(back.ok()) << back.error.to_string();
  ASSERT_EQ(back.value->vertex_count(), graph.vertex_count());
  for (VertexId from = 0; from < graph.vertex_count(); ++from) {
    for (VertexId to = 0; to < graph.vertex_count(); ++to) {
      if (from == to) continue;
      EXPECT_EQ(back.value->weight(from, to), graph.weight(from, to))
          << from << "->" << to;
    }
  }
}

TEST(Artifact, SparseMatrixRoundTrips) {
  const SparseMatrix matrix = sample_sparse();
  const Result<SparseMatrix> back = decode_sparse_matrix(encode(matrix));
  ASSERT_TRUE(back.ok()) << back.error.to_string();
  EXPECT_EQ(back.value->rows(), matrix.rows());
  EXPECT_EQ(back.value->cols(), matrix.cols());
  ASSERT_EQ(back.value->values().size(), matrix.values().size());
  for (std::size_t k = 0; k < matrix.values().size(); ++k) {
    EXPECT_EQ(back.value->values()[k], matrix.values()[k]);
  }
}

TEST(Artifact, DenseMatrixRoundTrips) {
  const Matrix matrix = sample_matrix();
  const Result<Matrix> back = decode_matrix(encode(matrix));
  ASSERT_TRUE(back.ok()) << back.error.to_string();
  ASSERT_EQ(back.value->rows(), matrix.rows());
  ASSERT_EQ(back.value->cols(), matrix.cols());
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    for (std::size_t c = 0; c < matrix.cols(); ++c) {
      EXPECT_EQ((*back.value)(r, c), matrix(r, c));
    }
  }
}

TEST(Artifact, RankedResultRoundTrips) {
  const RankedResult result = sample_result();
  const Result<RankedResult> back = decode_result(encode(result));
  ASSERT_TRUE(back.ok()) << back.error.to_string();
  EXPECT_EQ(*back.value, result);
}

TEST(Artifact, EncodingIsDeterministic) {
  EXPECT_EQ(encode(sample_votes()), encode(sample_votes()));
  EXPECT_EQ(encode(sample_result()), encode(sample_result()));
}

TEST(Artifact, PeekKindIdentifiesFrames) {
  const Result<Kind> kind = peek_kind(encode(sample_votes()));
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind.value, Kind::VoteBatch);
  const Result<Kind> result_kind = peek_kind(encode(sample_result()));
  ASSERT_TRUE(result_kind.ok());
  EXPECT_EQ(*result_kind.value, Kind::RankedResult);
}

// -- golden files: the bytes ARE the format ------------------------------

std::string golden_dir() { return CROWDRANK_TEST_DATA_DIR; }

void check_golden(const std::string& name, const std::string& bytes) {
  const fs::path path = fs::path(golden_dir()) / name;
  if (std::getenv("CROWDRANK_UPDATE_GOLDEN") != nullptr) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(os.good()) << "cannot write golden " << path;
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return;
  }
  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good())
      << "missing golden file " << path
      << " (regenerate with CROWDRANK_UPDATE_GOLDEN=1)";
  const std::string stored((std::istreambuf_iterator<char>(is)),
                           std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, stored)
      << name << ": encoded bytes diverged from the golden file — this is "
      << "an on-disk format change; bump the schema version";
}

TEST(ArtifactGolden, VoteBatchBytesArePinned) {
  check_golden("votes.crart", encode(sample_votes()));
}

TEST(ArtifactGolden, TaskGraphBytesArePinned) {
  check_golden("task_graph.crart", encode(sample_task_graph()));
}

TEST(ArtifactGolden, PreferenceGraphBytesArePinned) {
  check_golden("preference_graph.crart", encode(sample_preference_graph()));
}

TEST(ArtifactGolden, SparseMatrixBytesArePinned) {
  check_golden("sparse_matrix.crart", encode(sample_sparse()));
}

TEST(ArtifactGolden, DenseMatrixBytesArePinned) {
  check_golden("dense_matrix.crart", encode(sample_matrix()));
}

TEST(ArtifactGolden, RankedResultBytesArePinned) {
  check_golden("ranked_result.crart", encode(sample_result()));
}

TEST(ArtifactGolden, GoldenFilesStillDecode) {
  // The stored bytes must decode with today's reader (not just match
  // today's writer): this is the backward-compatibility half of the pin.
  for (const char* name : {"votes.crart", "task_graph.crart",
                           "preference_graph.crart", "sparse_matrix.crart",
                           "dense_matrix.crart", "ranked_result.crart"}) {
    const Result<std::string> bytes =
        read_file((fs::path(golden_dir()) / name).string());
    ASSERT_TRUE(bytes.ok()) << name << ": " << bytes.error.to_string();
    EXPECT_TRUE(peek_kind(*bytes.value).ok()) << name;
  }
  const Result<std::string> bytes = read_file(
      (fs::path(golden_dir()) / "ranked_result.crart").string());
  ASSERT_TRUE(bytes.ok());
  const Result<RankedResult> result = decode_result(*bytes.value);
  ASSERT_TRUE(result.ok()) << result.error.to_string();
  EXPECT_EQ(*result.value, sample_result());
}

// -- structured rejection ------------------------------------------------

TEST(ArtifactReject, TooSmall) {
  EXPECT_EQ(decode_votes("").error.code, ErrorCode::TooSmall);
  EXPECT_EQ(decode_votes("CRAF").error.code, ErrorCode::TooSmall);
}

TEST(ArtifactReject, BadMagic) {
  std::string bytes = encode(sample_votes());
  bytes[0] = 'X';
  EXPECT_EQ(decode_votes(bytes).error.code, ErrorCode::BadMagic);
}

TEST(ArtifactReject, TruncationAtEveryPrefix) {
  // Any strict prefix must be rejected (never misread, never thrown).
  const std::string bytes = encode(sample_votes());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const Result<VoteBatch> back = decode_votes(bytes.substr(0, len));
    EXPECT_FALSE(back.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_NE(back.error.code, ErrorCode::None);
  }
}

TEST(ArtifactReject, EveryBitFlipIsCaught) {
  // Flip one bit at every byte position past the magic: the checksum (or
  // an earlier header check) must reject each one. This is the corruption
  // contract of the result cache's disk tier.
  const std::string original = encode(sample_votes());
  for (std::size_t pos = 0; pos < original.size(); ++pos) {
    std::string corrupted = original;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x10);
    const Result<VoteBatch> back = decode_votes(corrupted);
    EXPECT_FALSE(back.ok()) << "bit flip at byte " << pos << " decoded";
  }
}

TEST(ArtifactReject, FutureFormatVersion) {
  // The format version is checked before the checksum: a reader that sees
  // a future frame revision says so, instead of reporting corruption
  // (the future writer may checksum differently).
  std::string bytes = encode(sample_votes());
  bytes[4] = static_cast<char>(kFormatVersion + 1);  // little-endian u32
  EXPECT_EQ(decode_votes(bytes).error.code, ErrorCode::BadFormatVersion);
}

TEST(ArtifactReject, FutureSchemaVersion) {
  // A validly framed artifact of a schema revision this reader does not
  // know: checksum passes, schema is rejected.
  const std::string payload = "\0\0\0\0\0\0\0\0";  // zero-count payload
  const std::string bytes =
      detail::frame(Kind::VoteBatch, kVoteBatchSchema + 1,
                    std::string_view(payload.data(), 8));
  EXPECT_EQ(decode_votes(bytes).error.code, ErrorCode::BadSchemaVersion);
}

TEST(ArtifactReject, WrongKind) {
  EXPECT_EQ(decode_votes(encode(sample_task_graph())).error.code,
            ErrorCode::WrongKind);
  EXPECT_EQ(decode_result(encode(sample_votes())).error.code,
            ErrorCode::WrongKind);
}

TEST(ArtifactReject, BadPayload) {
  // Validly framed garbage: declared vote count far beyond the bytes.
  std::string payload(8, '\0');
  payload[0] = '\x40';  // count = 64, no vote records follow
  const std::string bytes =
      detail::frame(Kind::VoteBatch, kVoteBatchSchema, payload);
  EXPECT_EQ(decode_votes(bytes).error.code, ErrorCode::BadPayload);
}

TEST(ArtifactReject, TrailingBytes) {
  // detail::frame checksums the declared span only; extra bytes after the
  // checksum are a size mismatch, not silently ignored.
  std::string bytes = encode(sample_votes());
  bytes += "extra";
  EXPECT_FALSE(decode_votes(bytes).ok());
}

std::string u64le(std::uint64_t value) {
  std::string out;
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(value >> (8 * i)));
  }
  return out;
}

TEST(ArtifactReject, ForgedVertexCountAtU64MaxIsRejected) {
  // n == UINT64_MAX once made the CSR decoders' `can_take(n + 1, 8)` wrap
  // to can_take(0, 8) and pass, sizing row_ptr empty while the `r <= n`
  // fill loop wrote out of bounds forever. A validly checksummed frame
  // (the checksum seed is public) must come back as BadPayload instead.
  const std::string graph_payload =
      u64le(std::numeric_limits<std::uint64_t>::max()) + u64le(0);
  EXPECT_EQ(decode_preference_graph(
                detail::frame(Kind::PreferenceGraph, kPreferenceGraphSchema,
                              graph_payload))
                .error.code,
            ErrorCode::BadPayload);
  const std::string matrix_payload =
      u64le(std::numeric_limits<std::uint64_t>::max()) + u64le(3) + u64le(0);
  EXPECT_EQ(decode_sparse_matrix(detail::frame(Kind::SparseMatrix,
                                               kSparseMatrixSchema,
                                               matrix_payload))
                .error.code,
            ErrorCode::BadPayload);
}

TEST(ArtifactReject, HugeDeclaredVertexCountIsRejectedNotAllocated) {
  // A 32-byte frame declaring 2^62 vertices must be rejected structurally,
  // not answered with an enormous allocation whose std::bad_alloc escapes
  // the decoder (readers never throw).
  const std::string payload = u64le(std::uint64_t{1} << 62) + u64le(0);
  EXPECT_EQ(decode_task_graph(
                detail::frame(Kind::TaskGraph, kTaskGraphSchema, payload))
                .error.code,
            ErrorCode::BadPayload);
  EXPECT_EQ(decode_preference_graph(
                detail::frame(Kind::PreferenceGraph, kPreferenceGraphSchema,
                              payload))
                .error.code,
            ErrorCode::BadPayload);
}

TEST(ArtifactReject, BadDirectionByte) {
  // Validly framed vote record whose direction byte is neither 0 nor 1.
  std::string payload(8 + 25, '\0');
  payload[0] = '\x01';          // count = 1
  payload[8 + 24] = '\x02';     // direction byte = 2
  const std::string bytes =
      detail::frame(Kind::VoteBatch, kVoteBatchSchema, payload);
  EXPECT_EQ(decode_votes(bytes).error.code, ErrorCode::BadPayload);
}

// -- file tier -----------------------------------------------------------

TEST(ArtifactFile, WriteReadRoundTrips) {
  const fs::path dir =
      fs::temp_directory_path() / "crowdrank_artifact_test";
  fs::create_directories(dir);
  const std::string path = (dir / "roundtrip.crart").string();
  const std::string bytes = encode(sample_result());
  ASSERT_FALSE(write_file(path, bytes).has_value());
  const Result<std::string> back = read_file(path);
  ASSERT_TRUE(back.ok()) << back.error.to_string();
  EXPECT_EQ(*back.value, bytes);
  // No .tmp residue: the write is rename-into-place.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove_all(dir);
}

TEST(ArtifactFile, MissingFileIsIoError) {
  const Result<std::string> back =
      read_file("/nonexistent/crowdrank/artifact.crart");
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error.code, ErrorCode::IoError);
}

TEST(ArtifactFile, EnsureDirectoryCreatesNestedPaths) {
  const fs::path dir = fs::temp_directory_path() /
                       "crowdrank_artifact_test_nested" / "a" / "b";
  fs::remove_all(dir.parent_path().parent_path());
  EXPECT_FALSE(ensure_directory(dir.string()).has_value());
  EXPECT_TRUE(fs::is_directory(dir));
  fs::remove_all(dir.parent_path().parent_path());
}

}  // namespace
}  // namespace crowdrank::service::artifact
