// Robustness suite for the batch ranking service: every fault-injection
// scenario must land in its documented structured outcome — never a crash,
// never an escaped exception, never a wedged executor pool — and results
// must be identical no matter how many executor threads run.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/pipeline.hpp"
#include "crowd/vote.hpp"

namespace crowdrank::service {
namespace {

using std::chrono::milliseconds;

/// All-pairs consistent batch over n objects: lower id always preferred,
/// so a healthy job completes with the identity ranking.
VoteBatch clean_batch(std::size_t n, std::size_t workers) {
  VoteBatch votes;
  for (WorkerId w = 0; w < workers; ++w) {
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = i + 1; j < n; ++j) {
        votes.push_back(Vote{w, i, j, true});
      }
    }
  }
  return votes;
}

/// Two disconnected islands: {0..4} fully compared, {5,6} compared only
/// with each other. A correct service degrades to ranking the big island.
VoteBatch island_batch() {
  VoteBatch votes = clean_batch(5, 3);
  for (WorkerId w = 0; w < 3; ++w) {
    votes.push_back(Vote{w, 5, 6, true});
  }
  return votes;
}

/// Spins until the executor has dequeued everything submitted so far —
/// used by the backpressure tests so "the queue is empty, the blocker is
/// running" is an established fact, not a race.
void wait_until_queue_empty(RankingService& svc) {
  for (int spin = 0; spin < 500 && svc.stats().queue_depth > 0; ++spin) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_EQ(svc.stats().queue_depth, 0u);
}

RankingJob clean_job(std::size_t n = 6) {
  RankingJob job;
  job.votes = clean_batch(n, 3);
  job.object_count = n;
  job.worker_count = 3;
  job.seed = 7;
  return job;
}

// ---------------------------------------------------------------------
// Table-driven fault matrix: one row per FaultPlan case, each asserting
// the documented outcome.
// ---------------------------------------------------------------------

struct FaultCase {
  const char* name;
  FaultPlan fault;
  milliseconds deadline{0};
  bool use_island_batch = false;
  JobOutcome expected_outcome;
  PipelineStage expected_stage;
  /// Substring the result's reason must contain ("" = don't care).
  const char* reason_contains = "";
};

std::vector<FaultCase> fault_matrix() {
  std::vector<FaultCase> cases;
  cases.push_back({"clean", FaultPlan{}, milliseconds(0), false,
                   JobOutcome::Completed, PipelineStage::Done, ""});
  {
    FaultCase c{"dropped_votes", FaultPlan{}, milliseconds(0), false,
                JobOutcome::Completed, PipelineStage::Done, ""};
    c.fault.drop_every_kth_vote = 3;
    cases.push_back(c);
  }
  {
    FaultCase c{"corrupted_votes", FaultPlan{}, milliseconds(0), false,
                JobOutcome::Completed, PipelineStage::Done, ""};
    c.fault.corrupt_every_kth_vote = 5;
    cases.push_back(c);
  }
  {
    FaultCase c{"disconnected_batch", FaultPlan{}, milliseconds(0), true,
                JobOutcome::Degraded, PipelineStage::Done, ""};
    cases.push_back(c);
  }
  {
    FaultCase c{"injected_stage_failure", FaultPlan{}, milliseconds(0),
                false, JobOutcome::Failed, PipelineStage::Propagation,
                "injected fault"};
    c.fault.fail_before = PipelineStage::Propagation;
    cases.push_back(c);
  }
  {
    FaultCase c{"stalled_stage_past_deadline", FaultPlan{},
                milliseconds(40), false, JobOutcome::TimedOut,
                PipelineStage::Smoothing, "deadline"};
    c.fault.stall_before = PipelineStage::Smoothing;
    c.fault.stall_duration = milliseconds(200);
    cases.push_back(c);
  }
  return cases;
}

TEST(ServiceFaultMatrixTest, EveryCaseYieldsItsDocumentedOutcome) {
  for (const FaultCase& c : fault_matrix()) {
    SCOPED_TRACE(c.name);
    RankingService svc;
    RankingJob job = clean_job();
    if (c.use_island_batch) {
      job.votes = island_batch();
      job.object_count = 7;
    }
    job.fault = c.fault;
    job.deadline = c.deadline;
    const JobResult result = svc.wait(svc.submit(std::move(job)));

    EXPECT_EQ(result.outcome, c.expected_outcome);
    EXPECT_EQ(result.stage, c.expected_stage);
    EXPECT_NE(result.reason.find(c.reason_contains), std::string::npos)
        << "reason was: " << result.reason;

    if (result.outcome == JobOutcome::Completed) {
      EXPECT_TRUE(result.ranking.complete());
      EXPECT_EQ(result.ranking.order.size(), 6u);
    }
    if (c.fault.drop_every_kth_vote > 0) {
      EXPECT_LT(result.hardening.input_votes, clean_job().votes.size());
    }
    if (c.fault.corrupt_every_kth_vote > 0) {
      EXPECT_GT(result.hardening.dropped_out_of_range, 0u);
    }
    if (result.outcome == JobOutcome::Degraded) {
      EXPECT_EQ(result.ranking.order.size(), 5u);
      EXPECT_EQ(result.ranking.excluded,
                (std::vector<VertexId>{5, 6}));
      EXPECT_GT(result.hardening.dropped_disconnected, 0u);
    }
  }
}

// ---------------------------------------------------------------------
// Admission control and lifecycle.
// ---------------------------------------------------------------------

TEST(ServiceTest, InvalidConfigIsRejectedStructurally) {
  RankingService svc;
  RankingJob job = clean_job();
  job.inference.saps.iterations = 0;
  const JobResult result = svc.wait(svc.submit(std::move(job)));
  EXPECT_EQ(result.outcome, JobOutcome::Rejected);
  EXPECT_EQ(result.stage, PipelineStage::Validation);
  EXPECT_NE(result.reason.find("saps.iterations"), std::string::npos)
      << result.reason;
  EXPECT_EQ(svc.stats().rejected, 1u);
}

TEST(ServiceTest, EmptyBatchFailsAtHardening) {
  RankingService svc;
  RankingJob job;
  job.object_count = 5;
  const JobResult result = svc.wait(svc.submit(std::move(job)));
  EXPECT_EQ(result.outcome, JobOutcome::Failed);
  EXPECT_EQ(result.stage, PipelineStage::Hardening);
  EXPECT_NE(result.reason.find("unusable"), std::string::npos);
}

TEST(ServiceTest, CancelWhileQueuedSettlesWithoutRunning) {
  ServiceConfig config;
  config.worker_count = 1;
  RankingService svc(config);

  // Occupy the single executor long enough for the victim to stay queued.
  RankingJob blocker = clean_job();
  blocker.fault.stall_before = PipelineStage::TruthDiscovery;
  blocker.fault.stall_duration = milliseconds(150);
  const std::uint64_t blocker_id = svc.submit(std::move(blocker));
  const std::uint64_t victim_id = svc.submit(clean_job());

  EXPECT_TRUE(svc.cancel(victim_id));
  const JobResult victim = svc.wait(victim_id);
  EXPECT_EQ(victim.outcome, JobOutcome::Cancelled);
  EXPECT_TRUE(victim.ranking.order.empty());
  EXPECT_EQ(svc.wait(blocker_id).outcome, JobOutcome::Completed);
  EXPECT_FALSE(svc.cancel(victim_id));  // already settled
}

TEST(ServiceTest, CancelRunningJobStopsAtNextCheckpoint) {
  ServiceConfig config;
  config.worker_count = 1;
  RankingService svc(config);
  RankingJob job = clean_job();
  job.fault.stall_before = PipelineStage::Smoothing;
  job.fault.stall_duration = milliseconds(150);
  const std::uint64_t id = svc.submit(std::move(job));
  // Give the executor time to enter the stall, then cancel mid-run.
  std::this_thread::sleep_for(milliseconds(30));
  svc.cancel(id);
  const JobResult result = svc.wait(id);
  EXPECT_EQ(result.outcome, JobOutcome::Cancelled);
  EXPECT_NE(result.stage, PipelineStage::Done);
}

TEST(ServiceTest, RejectNewPolicyRejectsWhenQueueIsFull) {
  ServiceConfig config;
  config.worker_count = 1;
  config.queue_capacity = 1;
  RankingService svc(config);

  RankingJob blocker = clean_job();
  blocker.fault.stall_before = PipelineStage::TruthDiscovery;
  blocker.fault.stall_duration = milliseconds(250);
  const std::uint64_t a = svc.submit(std::move(blocker));
  wait_until_queue_empty(svc);  // blocker is now running, queue empty
  const std::uint64_t b = svc.submit(clean_job());  // fills the queue
  const std::uint64_t c = svc.submit(clean_job());  // bounces

  const JobResult rejected = svc.wait(c);
  EXPECT_EQ(rejected.outcome, JobOutcome::Rejected);
  EXPECT_NE(rejected.reason.find("queue full"), std::string::npos);
  EXPECT_EQ(svc.wait(a).outcome, JobOutcome::Completed);
  EXPECT_EQ(svc.wait(b).outcome, JobOutcome::Completed);
  EXPECT_EQ(svc.stats().shed, 0u);
}

TEST(ServiceTest, ShedOldestPolicyEvictsTheHeadOfTheQueue) {
  ServiceConfig config;
  config.worker_count = 1;
  config.queue_capacity = 1;
  config.policy = QueuePolicy::ShedOldest;
  RankingService svc(config);

  RankingJob blocker = clean_job();
  blocker.fault.stall_before = PipelineStage::TruthDiscovery;
  blocker.fault.stall_duration = milliseconds(250);
  const std::uint64_t a = svc.submit(std::move(blocker));
  wait_until_queue_empty(svc);  // blocker is now running, queue empty
  const std::uint64_t b = svc.submit(clean_job());  // queued
  const std::uint64_t c = svc.submit(clean_job());  // sheds b

  const JobResult shed = svc.wait(b);
  EXPECT_EQ(shed.outcome, JobOutcome::Rejected);
  EXPECT_NE(shed.reason.find("shed"), std::string::npos);
  EXPECT_EQ(svc.wait(a).outcome, JobOutcome::Completed);
  EXPECT_EQ(svc.wait(c).outcome, JobOutcome::Completed);
  EXPECT_EQ(svc.stats().shed, 1u);
}

TEST(ServiceTest, ServiceLevelFaultPlanTargetsOneSubmission) {
  ServiceConfig config;
  config.fault.fail_before = PipelineStage::RankSearch;
  config.fault.only_job = 1;  // second submission only
  RankingService svc(config);
  const std::uint64_t a = svc.submit(clean_job());
  const std::uint64_t b = svc.submit(clean_job());
  const std::uint64_t c = svc.submit(clean_job());
  EXPECT_EQ(svc.wait(a).outcome, JobOutcome::Completed);
  const JobResult failed = svc.wait(b);
  EXPECT_EQ(failed.outcome, JobOutcome::Failed);
  EXPECT_EQ(failed.stage, PipelineStage::RankSearch);
  EXPECT_EQ(svc.wait(c).outcome, JobOutcome::Completed);
}

TEST(ServiceTest, PoolIsNeverWedgedByAbortedJobs) {
  ServiceConfig config;
  config.worker_count = 2;
  RankingService svc(config);

  RankingJob doomed = clean_job();
  doomed.fault.stall_before = PipelineStage::Smoothing;
  doomed.fault.stall_duration = milliseconds(120);
  doomed.deadline = milliseconds(30);
  const std::uint64_t timed_out = svc.submit(std::move(doomed));

  RankingJob failing = clean_job();
  failing.fault.fail_before = PipelineStage::TruthDiscovery;
  const std::uint64_t failed = svc.submit(std::move(failing));

  EXPECT_EQ(svc.wait(timed_out).outcome, JobOutcome::TimedOut);
  EXPECT_EQ(svc.wait(failed).outcome, JobOutcome::Failed);

  // The same executors must still serve healthy work.
  const JobResult after = svc.wait(svc.submit(clean_job()));
  EXPECT_EQ(after.outcome, JobOutcome::Completed);

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(ServiceTest, DestructorSettlesQueuedJobsAndJoins) {
  std::uint64_t queued_id = 0;
  JobResult queued_result;
  {
    ServiceConfig config;
    config.worker_count = 1;
    RankingService svc(config);
    RankingJob blocker = clean_job();
    blocker.fault.stall_before = PipelineStage::TruthDiscovery;
    blocker.fault.stall_duration = milliseconds(100);
    svc.submit(std::move(blocker));
    queued_id = svc.submit(clean_job());
    // Destroying the service must not hang: the queued job settles as
    // Cancelled and the running one stops at its next checkpoint.
  }
  EXPECT_GT(queued_id, 0u);
}

TEST(ServiceTest, DrainReturnsSubmissionOrder) {
  ServiceConfig config;
  config.worker_count = 4;
  RankingService svc(config);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RankingJob job = clean_job();
    job.seed = seed;
    ids.push_back(svc.submit(std::move(job)));
  }
  const std::vector<JobResult> results = svc.drain();
  ASSERT_EQ(results.size(), ids.size());
  for (std::size_t k = 0; k < ids.size(); ++k) {
    EXPECT_EQ(results[k].id, ids[k]);
    EXPECT_EQ(results[k].outcome, JobOutcome::Completed);
  }
}

// ---------------------------------------------------------------------
// Determinism: the same job stream produces bitwise-identical rankings
// at 1 executor and at N executors (content never depends on
// interleaving; only queue/run timing may differ).
// ---------------------------------------------------------------------

std::vector<RankingJob> determinism_stream() {
  std::vector<RankingJob> jobs;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    RankingJob job = clean_job(7);
    job.seed = seed;
    jobs.push_back(job);
  }
  {
    RankingJob job = clean_job(6);
    job.fault.drop_every_kth_vote = 4;
    jobs.push_back(job);
  }
  {
    RankingJob job = clean_job(6);
    job.fault.corrupt_every_kth_vote = 6;
    jobs.push_back(job);
  }
  {
    RankingJob job;
    job.votes = island_batch();
    job.object_count = 7;
    job.seed = 5;
    jobs.push_back(job);
  }
  {
    RankingJob job = clean_job();
    job.fault.fail_before = PipelineStage::RankSearch;
    jobs.push_back(job);
  }
  return jobs;
}

std::vector<JobResult> run_stream(std::size_t workers) {
  ServiceConfig config;
  config.worker_count = workers;
  RankingService svc(config);
  for (const RankingJob& job : determinism_stream()) {
    svc.submit(job);
  }
  return svc.drain();
}

TEST(ServiceDeterminismTest, IdenticalResultsAtOneAndManyExecutors) {
  const std::vector<JobResult> solo = run_stream(1);
  const std::vector<JobResult> fleet = run_stream(4);
  ASSERT_EQ(solo.size(), fleet.size());
  for (std::size_t k = 0; k < solo.size(); ++k) {
    SCOPED_TRACE("job " + std::to_string(k));
    EXPECT_EQ(solo[k].outcome, fleet[k].outcome);
    EXPECT_EQ(solo[k].stage, fleet[k].stage);
    EXPECT_EQ(solo[k].ranking.order, fleet[k].ranking.order);
    EXPECT_EQ(solo[k].ranking.excluded, fleet[k].ranking.excluded);
    EXPECT_EQ(solo[k].log_probability, fleet[k].log_probability);
    EXPECT_EQ(solo[k].hardening.retained_votes,
              fleet[k].hardening.retained_votes);
  }
}

}  // namespace
}  // namespace crowdrank::service
