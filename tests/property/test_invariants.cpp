// Property sweeps (TEST_P) over the whole pipeline: invariants that must
// hold for every (n, ratio, quality, seed) combination.
#include <gtest/gtest.h>

#include <tuple>

#include "core/pipeline.hpp"
#include "graph/preference_graph.hpp"
#include "metrics/kendall.hpp"

namespace crowdrank {
namespace {

using SweepParam =
    std::tuple<std::size_t /*n*/, double /*ratio*/, QualityDistribution,
               QualityLevel>;

class PipelineInvariants : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PipelineInvariants, HoldAcrossTheGrid) {
  const auto [n, ratio, dist, level] = GetParam();
  ExperimentConfig config;
  config.object_count = n;
  config.selection_ratio = ratio;
  config.worker_pool_size = 20;
  config.workers_per_task = 3;
  config.worker_quality = {dist, level};
  config.inference.saps.iterations = 600;  // speed over polish here
  config.seed = 1000 + n * 7 + static_cast<std::size_t>(ratio * 100);
  const ExperimentResult r = run_experiment(config);

  // 1. Output is a full ranking over exactly the n objects.
  EXPECT_EQ(r.inference.ranking.size(), n);

  // 2. Budget-consciousness: l tasks, each with w workers, within budget.
  EXPECT_LE(r.unique_tasks,
            n * (n - 1) / 2);
  EXPECT_GE(r.unique_tasks, n - 1);

  // 3. Task fairness: near-regular degrees.
  EXPECT_LE(r.assignment_stats.max_degree - r.assignment_stats.min_degree,
            1u);

  // 4. Step-1 sanity: one truth per unique task, all x in [0,1], qualities
  //    in [0,1].
  EXPECT_EQ(r.inference.step1.truths.size(), r.unique_tasks);
  for (const auto& t : r.inference.step1.truths) {
    EXPECT_GE(t.x, 0.0);
    EXPECT_LE(t.x, 1.0);
    EXPECT_GE(t.vote_count, 1u);
  }
  for (const double q : r.inference.step1.worker_quality) {
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }

  // 5. Step-2 guarantee: smoothed graph strongly connected.
  EXPECT_TRUE(r.inference.step2.strongly_connected_after);

  // 6. Step-3 guarantee (Thm 5.1): complete closure.
  EXPECT_TRUE(r.inference.step3.complete);

  // 7. Accuracy is a valid Kendall-based score and beats anti-correlation.
  EXPECT_GE(r.accuracy, 0.0);
  EXPECT_LE(r.accuracy, 1.0);

  // 8. Timings exist for all four steps.
  EXPECT_EQ(r.inference.timings.phases().size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineInvariants,
    ::testing::Combine(
        ::testing::Values<std::size_t>(10, 30, 60),
        ::testing::Values(0.1, 0.5, 1.0),
        ::testing::Values(QualityDistribution::Gaussian,
                          QualityDistribution::Uniform),
        ::testing::Values(QualityLevel::High, QualityLevel::Medium,
                          QualityLevel::Low)));

class AccuracyFloor : public ::testing::TestWithParam<
                          std::tuple<std::size_t, double>> {};

TEST_P(AccuracyFloor, HighQualityWorkersClearTheBar) {
  const auto [n, ratio] = GetParam();
  double acc = 0.0;
  const int trials = 3;
  for (int t = 0; t < trials; ++t) {
    ExperimentConfig config;
    config.object_count = n;
    config.selection_ratio = ratio;
    config.worker_pool_size = 20;
    config.workers_per_task = 3;
    config.worker_quality = {QualityDistribution::Gaussian,
                             QualityLevel::High};
    config.seed = 31 * n + t;
    acc += run_experiment(config).accuracy;
  }
  acc /= trials;
  // With near-perfect workers, half the pairwise budget must land far
  // above chance at every scale in the sweep.
  EXPECT_GT(acc, 0.8) << "n=" << n << " ratio=" << ratio;
}

INSTANTIATE_TEST_SUITE_P(Grid, AccuracyFloor,
                         ::testing::Combine(::testing::Values<std::size_t>(
                                                30, 60, 100),
                                            ::testing::Values(0.3, 0.5,
                                                              1.0)));

class SeedDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedDeterminism, SameSeedSameOutcome) {
  ExperimentConfig config;
  config.object_count = 25;
  config.selection_ratio = 0.4;
  config.worker_pool_size = 12;
  config.workers_per_task = 3;
  config.seed = GetParam();
  const auto a = run_experiment(config);
  const auto b = run_experiment(config);
  EXPECT_EQ(a.inference.ranking, b.inference.ranking);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.inference.one_edge_count, b.inference.one_edge_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedDeterminism,
                         ::testing::Values(1u, 17u, 123456789u));

}  // namespace
}  // namespace crowdrank
