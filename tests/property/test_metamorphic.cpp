// Metamorphic properties of the inference pipeline: transformations of the
// input with a known, provable effect on the output. These catch whole
// classes of bugs (hidden ordering dependencies, label leakage, vote
// double-counting) that example-based tests cannot.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.hpp"
#include "core/truth_discovery.hpp"
#include "metrics/kendall.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

/// A reproducible world: tasks, assignment, and a clean-ish vote batch.
struct World {
  std::size_t n = 25;
  std::size_t m = 12;
  Ranking truth = Ranking::identity(25);
  std::unique_ptr<HitAssignment> assignment;
  VoteBatch votes;

  explicit World(std::uint64_t seed) {
    Rng rng(seed);
    auto perm = rng.permutation(n);
    truth = Ranking(std::vector<VertexId>(perm.begin(), perm.end()));
    const auto ta = generate_task_assignment(n, 150, rng);
    std::vector<Edge> tasks(ta.graph.edges().begin(),
                            ta.graph.edges().end());
    assignment =
        std::make_unique<HitAssignment>(tasks, HitConfig{5, 3}, m, rng);
    auto workers = sample_worker_pool(
        m, {QualityDistribution::Gaussian, QualityLevel::Medium}, rng);
    const SimulatedCrowd crowd(truth, workers);
    votes = crowd.collect(*assignment, rng);
  }
};

TEST(Metamorphic, VoteOrderDoesNotAffectTruthDiscovery) {
  const World w(1);
  const auto base = discover_truth(w.votes, w.n, w.m);

  VoteBatch shuffled = w.votes;
  Rng rng(2);
  rng.shuffle(shuffled);
  const auto permuted = discover_truth(shuffled, w.n, w.m);

  ASSERT_EQ(base.truths.size(), permuted.truths.size());
  // Same task set with identical estimates (map by task, order may vary).
  for (const auto& t : base.truths) {
    const auto it = std::find_if(
        permuted.truths.begin(), permuted.truths.end(),
        [&](const TaskTruth& u) { return u.task == t.task; });
    ASSERT_NE(it, permuted.truths.end());
    EXPECT_NEAR(it->x, t.x, 1e-12);
  }
  for (WorkerId k = 0; k < w.m; ++k) {
    EXPECT_NEAR(base.worker_quality[k], permuted.worker_quality[k], 1e-12);
  }
}

TEST(Metamorphic, UniformVoteReplicationBarelyMovesTruths) {
  // Duplicating EVERY vote r times rescales Eq. 4's numerator and
  // denominator equally, so truths would be exactly invariant — except
  // Eq. 5's chi2(alpha/2, |T_k|) is nonlinear in the task count, which
  // perturbs the iteration weights (worst on contested tasks). Assert near-
  // invariance and, critically, that no estimate's direction moves.
  const World w(3);
  const auto base = discover_truth(w.votes, w.n, w.m);

  VoteBatch tripled;
  for (int copy = 0; copy < 3; ++copy) {
    tripled.insert(tripled.end(), w.votes.begin(), w.votes.end());
  }
  const auto replicated = discover_truth(tripled, w.n, w.m);
  ASSERT_EQ(base.truths.size(), replicated.truths.size());
  for (std::size_t t = 0; t < base.truths.size(); ++t) {
    EXPECT_EQ(base.truths[t].task, replicated.truths[t].task);
    EXPECT_NEAR(base.truths[t].x, replicated.truths[t].x, 0.05);
    if (base.truths[t].x != 0.5) {
      EXPECT_EQ(base.truths[t].x > 0.5, replicated.truths[t].x > 0.5);
    }
  }
}

TEST(Metamorphic, ObjectRelabelingIsEquivariant) {
  // Renaming objects by a permutation sigma must rename the output
  // ranking by sigma and nothing else.
  const World w(4);
  Rng rng(5);
  const auto sigma_vec = rng.permutation(w.n);  // sigma[old] = new

  VoteBatch relabeled = w.votes;
  for (Vote& v : relabeled) {
    v.i = sigma_vec[v.i];
    v.j = sigma_vec[v.j];
  }

  // The inference includes stochastic search; determinism comes from the
  // seed, but the search's random choices depend on labels. Use the exact
  // Held-Karp search so the comparison is label-noise-free. n = 25 is too
  // big for Held-Karp, so compare the *closures* entrywise instead, which
  // exercises Steps 1-3 (the deterministic part).
  InferenceConfig config;
  config.saps.iterations = 1;  // Step 4 output not compared
  config.saps.restarts = 1;
  const InferenceEngine engine(config);
  Rng rng_a(7);
  const auto base = engine.infer(w.votes, w.n, w.m, rng_a);
  Rng rng_b(7);
  const auto renamed = engine.infer(relabeled, w.n, w.m, rng_b);

  for (VertexId i = 0; i < w.n; ++i) {
    for (VertexId j = 0; j < w.n; ++j) {
      if (i == j) continue;
      EXPECT_NEAR(renamed.closure(sigma_vec[i], sigma_vec[j]),
                  base.closure(i, j), 1e-9)
          << i << "," << j;
    }
  }
}

TEST(Metamorphic, GlobalVoteInversionReversesTheClosure) {
  // Flipping every vote is equivalent to reversing the ground truth: the
  // closure must transpose.
  const World w(6);
  VoteBatch inverted = w.votes;
  for (Vote& v : inverted) {
    v.prefers_i = !v.prefers_i;
  }
  InferenceConfig config;
  config.saps.iterations = 1;
  config.saps.restarts = 1;
  const InferenceEngine engine(config);
  Rng rng_a(8);
  const auto base = engine.infer(w.votes, w.n, w.m, rng_a);
  Rng rng_b(8);
  const auto flipped = engine.infer(inverted, w.n, w.m, rng_b);
  for (VertexId i = 0; i < w.n; ++i) {
    for (VertexId j = 0; j < w.n; ++j) {
      if (i == j) continue;
      EXPECT_NEAR(flipped.closure(i, j), base.closure(j, i), 1e-9);
    }
  }
}

TEST(Metamorphic, AddingAPerfectlyRedundantWorkerOnlyHelps) {
  // Cloning an existing worker's votes under a fresh worker id must not
  // change any truth estimate's *direction* (it adds consistent mass).
  const World w(9);
  const auto base = discover_truth(w.votes, w.n, w.m);

  VoteBatch augmented = w.votes;
  for (const Vote& v : w.votes) {
    if (v.worker == 0) {
      augmented.push_back(Vote{static_cast<WorkerId>(w.m), v.i, v.j,
                               v.prefers_i});
    }
  }
  const auto more = discover_truth(augmented, w.n, w.m + 1);
  for (const auto& t : base.truths) {
    const auto it = std::find_if(
        more.truths.begin(), more.truths.end(),
        [&](const TaskTruth& u) { return u.task == t.task; });
    ASSERT_NE(it, more.truths.end());
    if (t.x > 0.6) {
      EXPECT_GT(it->x, 0.5) << "confident direction flipped";
    }
    if (t.x < 0.4) {
      EXPECT_LT(it->x, 0.5) << "confident direction flipped";
    }
  }
}

}  // namespace
}  // namespace crowdrank
