// The telemetry plane end to end: files and schema on disk, the periodic
// exporter, bounded postmortem emission for every terminal outcome that
// warrants one, and the bitwise determinism pin with telemetry on/off.
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "crowd/vote.hpp"
#include "obs/json.hpp"
#include "service/service.hpp"

namespace crowdrank::obs {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;

/// Scratch dir per test, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("crowdrank_obs_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::vector<std::string> file_lines(const fs::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TelemetryConfig manual_config(const TempDir& dir) {
  TelemetryConfig config;
  config.directory = (dir.path / "out").string();
  config.period = milliseconds(0);  // no exporter thread; flush by hand
  return config;
}

VoteBatch clean_batch(std::size_t n, std::size_t workers) {
  VoteBatch votes;
  for (WorkerId w = 0; w < workers; ++w) {
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = i + 1; j < n; ++j) {
        votes.push_back(Vote{w, i, j, true});
      }
    }
  }
  return votes;
}

service::RankingJob clean_job(std::uint64_t seed = 7) {
  service::RankingJob job;
  job.votes = clean_batch(6, 3);
  job.object_count = 6;
  job.worker_count = 3;
  job.seed = seed;
  return job;
}

TEST(TelemetryTest, WritesSchemaValidSnapshotFiles) {
  const TempDir dir;
  Telemetry telemetry(manual_config(dir), /*executor_count=*/2);

  telemetry.on_job_accepted(1, 1);
  telemetry.on_job_started(0, 1, 0.2);
  telemetry.on_stage_checkpoint(0, 1, "hardening", 1, 0.4);
  telemetry.on_job_finished(0, 1, "completed", 0, 0.2, 1.1);
  telemetry.on_outcome("completed");
  telemetry.flush_snapshot();
  EXPECT_EQ(telemetry.snapshots_written(), 1u);

  const fs::path out = dir.path / "out";
  const auto lines = file_lines(out / "telemetry.jsonl");
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue snap = parse_json(lines[0]);
  EXPECT_DOUBLE_EQ(snap.number_at("v"), 1.0);
  EXPECT_DOUBLE_EQ(snap.number_at("seq"), 0.0);
  const JsonValue* counters = snap.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->number_at("service.outcome.completed"), 1.0);
  const JsonValue* histograms = snap.find("histograms");
  ASSERT_NE(histograms, nullptr);
  EXPECT_NE(histograms->find("service.job_ms"), nullptr);
  EXPECT_NE(histograms->find("service.stage_ms.hardening"), nullptr);
  const JsonValue* events = snap.find("events");
  ASSERT_NE(events, nullptr);
  // accepted + started + checkpoint + finished all made the tail.
  EXPECT_EQ(events->items.size(), 4u);

  // metrics.prom exists and mentions the counter under its sanitized name.
  std::ifstream prom(out / "metrics.prom");
  std::stringstream text;
  text << prom.rdbuf();
  EXPECT_NE(text.str().find("crowdrank_service_outcome_completed 1"),
            std::string::npos);

  // Sequence numbers are monotonic across flushes.
  telemetry.flush_snapshot();
  const auto more = file_lines(out / "telemetry.jsonl");
  ASSERT_EQ(more.size(), 2u);
  EXPECT_DOUBLE_EQ(parse_json(more[1]).number_at("seq"), 1.0);
}

TEST(TelemetryTest, ExporterThreadWritesPeriodicallyAndFlushesOnExit) {
  const TempDir dir;
  {
    TelemetryConfig config;
    config.directory = (dir.path / "out").string();
    config.period = milliseconds(5);
    Telemetry telemetry(std::move(config), 1);
    telemetry.on_outcome("completed");
    std::this_thread::sleep_for(milliseconds(60));
    EXPECT_GE(telemetry.snapshots_written(), 2u);
  }  // destructor joins the exporter and flushes one final snapshot
  const auto lines = file_lines(dir.path / "out" / "telemetry.jsonl");
  ASSERT_GE(lines.size(), 2u);
  double last_seq = -1.0;
  for (const std::string& line : lines) {
    const double seq = parse_json(line).number_at("seq");
    EXPECT_GT(seq, last_seq);
    last_seq = seq;
  }
}

TEST(TelemetryTest, PostmortemsAreWrittenAndBounded) {
  const TempDir dir;
  TelemetryConfig config = manual_config(dir);
  config.max_postmortems = 2;
  Telemetry telemetry(std::move(config), 1);

  for (std::uint64_t id = 1; id <= 3; ++id) {
    Postmortem postmortem;
    postmortem.job_id = id;
    postmortem.outcome = "failed";
    postmortem.stage = "rank_search";
    postmortem.reason = "test";
    telemetry.write_postmortem(postmortem);
  }
  EXPECT_EQ(telemetry.postmortems_written(), 2u);
  const fs::path pm_dir = dir.path / "out" / "postmortems";
  EXPECT_TRUE(fs::exists(pm_dir / "job_1_failed.json"));
  EXPECT_TRUE(fs::exists(pm_dir / "job_2_failed.json"));
  EXPECT_FALSE(fs::exists(pm_dir / "job_3_failed.json"));
  // Every written file is a valid JSON document.
  std::ifstream in(pm_dir / "job_1_failed.json");
  std::stringstream text;
  text << in.rdbuf();
  const JsonValue doc = parse_json(text.str());
  EXPECT_EQ(doc.string_at("outcome"), "failed");

  telemetry.flush_snapshot();
  const auto lines =
      file_lines(dir.path / "out" / "telemetry.jsonl");
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue snap = parse_json(lines[0]);
  const JsonValue* counters = snap.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->number_at("service.postmortem.written"), 2.0);
  EXPECT_DOUBLE_EQ(counters->number_at("service.postmortem.skipped"), 1.0);
}

TEST(TelemetryTest, ServiceEmitsOnePostmortemPerFailedTerminalOutcome) {
  const TempDir dir;
  Telemetry telemetry(manual_config(dir), /*executor_count=*/1);
  service::ServiceConfig config;
  config.worker_count = 1;
  config.telemetry = &telemetry;
  service::RankingService svc(config);

  // Failed: injected stage fault.
  service::RankingJob failing = clean_job(2);
  failing.fault.fail_before = PipelineStage::Propagation;
  failing.fault.fail_reason = "injected fault";
  // TimedOut: a stalled stage blowing a short deadline.
  service::RankingJob timing_out = clean_job(3);
  timing_out.fault.stall_before = PipelineStage::Smoothing;
  timing_out.fault.stall_duration = milliseconds(200);
  timing_out.deadline = milliseconds(40);
  // Degraded: a disconnected island batch.
  service::RankingJob degraded = clean_job(4);
  degraded.votes = clean_batch(5, 3);
  for (WorkerId w = 0; w < 3; ++w) {
    degraded.votes.push_back(Vote{w, 5, 6, true});
  }
  degraded.object_count = 7;
  // Completed: must NOT produce a postmortem.
  service::RankingJob healthy = clean_job(5);

  EXPECT_EQ(svc.wait(svc.submit(std::move(failing))).outcome,
            service::JobOutcome::Failed);
  EXPECT_EQ(svc.wait(svc.submit(std::move(timing_out))).outcome,
            service::JobOutcome::TimedOut);
  EXPECT_EQ(svc.wait(svc.submit(std::move(degraded))).outcome,
            service::JobOutcome::Degraded);
  EXPECT_EQ(svc.wait(svc.submit(std::move(healthy))).outcome,
            service::JobOutcome::Completed);

  EXPECT_EQ(telemetry.postmortems_written(), 3u);
  const fs::path pm_dir = dir.path / "out" / "postmortems";
  EXPECT_TRUE(fs::exists(pm_dir / "job_1_failed.json"));
  EXPECT_TRUE(fs::exists(pm_dir / "job_2_timed_out.json"));
  EXPECT_TRUE(fs::exists(pm_dir / "job_3_degraded.json"));

  // The failed job's document carries the full context: config echo,
  // hardening accounting, the job's span subtree rooted at parent -1,
  // and the executor's flight-recorder window naming the job.
  std::ifstream in(pm_dir / "job_1_failed.json");
  std::stringstream text;
  text << in.rdbuf();
  const JsonValue doc = parse_json(text.str());
  EXPECT_EQ(doc.string_at("stage"), "propagation");
  EXPECT_NE(doc.string_at("reason").find("injected fault"),
            std::string::npos);
  const JsonValue* config_echo = doc.find("config");
  ASSERT_NE(config_echo, nullptr);
  EXPECT_DOUBLE_EQ(config_echo->number_at("seed"), 2.0);
  EXPECT_EQ(config_echo->string_at("search"), "saps");
  const JsonValue* hardening = doc.find("hardening");
  ASSERT_NE(hardening, nullptr);
  EXPECT_GT(hardening->number_at("input_votes"), 0.0);
  const JsonValue* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  bool saw_job = false;
  for (const JsonValue& e : events->items) {
    saw_job = saw_job || e.number_at("job") == 1.0;
  }
  EXPECT_TRUE(saw_job);
}

TEST(TelemetryTest, RankingsAreBitwiseIdenticalWithTelemetryOnOrOff) {
  // The plane observes and never influences: the same job stream must
  // produce byte-identical rankings and log-probabilities with telemetry
  // attached or not, at one executor and at several.
  const auto run_stream = [](std::size_t workers, Telemetry* telemetry) {
    service::ServiceConfig config;
    config.worker_count = workers;
    config.telemetry = telemetry;
    service::RankingService svc(config);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      svc.submit(clean_job(seed));
    }
    std::ostringstream fingerprint;
    fingerprint.precision(17);
    for (const service::JobResult& r : svc.drain()) {
      fingerprint << r.id << ':' << static_cast<int>(r.outcome) << ':';
      for (const VertexId v : r.ranking.order) {
        fingerprint << v << ',';
      }
      fingerprint << r.log_probability << ';';
    }
    return fingerprint.str();
  };

  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    SCOPED_TRACE(workers);
    const std::string without = run_stream(workers, nullptr);
    const TempDir dir;
    Telemetry telemetry(manual_config(dir), workers);
    const std::string with = run_stream(workers, &telemetry);
    EXPECT_EQ(without, with);
  }
}

}  // namespace
}  // namespace crowdrank::obs
