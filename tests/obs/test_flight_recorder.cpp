// Flight-recorder semantics: FIFO retention with wraparound overwrite,
// lossless (never torn) snapshots concurrent with a writer, and the
// merged all-rings timeline.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

namespace crowdrank::obs {
namespace {

Event make_event(double t_us, std::uint64_t job, double value,
                 EventKind kind = EventKind::StageCheckpoint) {
  Event e;
  e.t_us = t_us;
  e.job_id = job;
  e.kind = kind;
  e.code = static_cast<std::uint8_t>(job % 7);
  e.value = value;
  return e;
}

TEST(FlightRecorderTest, RetainsEventsOldestFirst) {
  FlightRecorder recorder(/*ring_count=*/1, /*capacity=*/8);
  for (std::uint64_t k = 1; k <= 3; ++k) {
    recorder.record(0, make_event(static_cast<double>(k), k, 10.0 * k));
  }
  const RingSnapshot snap = recorder.snapshot(0);
  ASSERT_EQ(snap.events.size(), 3u);
  EXPECT_EQ(snap.total_recorded, 3u);
  for (std::size_t i = 0; i < snap.events.size(); ++i) {
    EXPECT_EQ(snap.events[i].job_id, i + 1);
    EXPECT_DOUBLE_EQ(snap.events[i].value, 10.0 * static_cast<double>(i + 1));
    EXPECT_EQ(snap.events[i].kind, EventKind::StageCheckpoint);
  }
}

TEST(FlightRecorderTest, WrapsOverwritingTheOldest) {
  FlightRecorder recorder(/*ring_count=*/1, /*capacity=*/4);
  for (std::uint64_t k = 1; k <= 10; ++k) {
    recorder.record(0, make_event(static_cast<double>(k), k, 0.0));
  }
  const RingSnapshot snap = recorder.snapshot(0);
  // Only the newest `capacity` events survive; the head count still
  // reports everything ever recorded so readers can tell 6 were lost.
  ASSERT_EQ(snap.events.size(), 4u);
  EXPECT_EQ(snap.total_recorded, 10u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snap.events[i].job_id, 7 + i);
  }
}

TEST(FlightRecorderTest, StampsZeroTimestampsWithNowAndKeepsExplicitOnes) {
  FlightRecorder recorder(1, 4);
  Event explicit_time = make_event(123.5, 1, 0.0);
  recorder.record(0, explicit_time);
  Event zero_time = make_event(0.0, 2, 0.0);
  recorder.record(0, zero_time);
  const RingSnapshot snap = recorder.snapshot(0);
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.events[0].t_us, 123.5);
  EXPECT_GE(snap.events[1].t_us, 0.0);
  EXPECT_LE(snap.events[1].t_us, recorder.now_us());
}

TEST(FlightRecorderTest, ClampsOutOfRangeRingIndex) {
  FlightRecorder recorder(/*ring_count=*/2, /*capacity=*/4);
  recorder.record(99, make_event(1.0, 42, 0.0));
  EXPECT_EQ(recorder.snapshot(0).events.size(), 0u);
  const RingSnapshot last = recorder.snapshot(1);
  ASSERT_EQ(last.events.size(), 1u);
  EXPECT_EQ(last.events[0].job_id, 42u);
}

TEST(FlightRecorderTest, SnapshotAllMergesRingsByTimestamp) {
  FlightRecorder recorder(/*ring_count=*/2, /*capacity=*/4);
  recorder.record(0, make_event(1.0, 1, 0.0));
  recorder.record(0, make_event(5.0, 3, 0.0));
  recorder.record(1, make_event(2.0, 2, 0.0));
  recorder.record(1, make_event(9.0, 4, 0.0));
  const RingSnapshot all = recorder.snapshot_all();
  ASSERT_EQ(all.events.size(), 4u);
  EXPECT_EQ(all.total_recorded, 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(all.events[i].job_id, i + 1);
  }
}

TEST(FlightRecorderTest, ConcurrentSnapshotsNeverObserveTornEvents) {
  // One writer hammering a tiny ring (constant wraparound), one reader
  // snapshotting as fast as it can. Every event is written with the
  // invariant value == 2 * job_id; a torn read would pair a new job_id
  // with an old value. The seqlock must make that impossible.
  FlightRecorder recorder(/*ring_count=*/1, /*capacity=*/8);
  constexpr std::uint64_t kWrites = 20000;
  std::thread writer([&] {
    for (std::uint64_t k = 1; k <= kWrites; ++k) {
      recorder.record(
          0, make_event(static_cast<double>(k), k,
                        2.0 * static_cast<double>(k), EventKind::JobFinished));
    }
  });
  const auto check = [](const RingSnapshot& snap) {
    std::uint64_t previous = 0;
    for (const Event& e : snap.events) {
      EXPECT_DOUBLE_EQ(e.value, 2.0 * static_cast<double>(e.job_id));
      EXPECT_GT(e.job_id, previous);  // oldest-first, strictly increasing
      previous = e.job_id;
    }
  };
  // Snapshot while the writer runs (yielding so a single-core host still
  // interleaves the two threads), then once more after it has finished —
  // the final ring must hold exactly the newest `capacity` events.
  while (recorder.snapshot(0).total_recorded < kWrites) {
    check(recorder.snapshot(0));
    std::this_thread::yield();
  }
  writer.join();
  const RingSnapshot final_snap = recorder.snapshot(0);
  check(final_snap);
  ASSERT_EQ(final_snap.events.size(), 8u);
  EXPECT_EQ(final_snap.total_recorded, kWrites);
  EXPECT_EQ(final_snap.events.back().job_id, kWrites);
}

}  // namespace
}  // namespace crowdrank::obs
