// Serialization contracts of the telemetry plane: a golden Prometheus
// text exposition, the JSONL snapshot line round-tripped through the
// bundled JSON parser, and the postmortem document shape.
#include "obs/exposition.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "util/metrics.hpp"

namespace crowdrank::obs {
namespace {

/// The fixed state every test serializes: one counter, one gauge, one
/// histogram holding 0.5 and 3.0 (buckets le=1 and le=4), and two
/// flight-recorder events.
TelemetrySnapshot sample_snapshot() {
  TelemetrySnapshot snapshot;
  snapshot.seq = 7;
  snapshot.t_us = 1500.0;
  snapshot.counters.emplace_back("service.outcome.completed", 2);
  snapshot.gauges.emplace_back("service.queue_depth", 3.0);

  metrics::Histogram histogram;
  histogram.observe(0.5);
  histogram.observe(3.0);
  snapshot.histograms.emplace_back("service.job_ms", histogram.snapshot());

  snapshot.window.jobs_per_sec = 1.5;
  snapshot.window.window_ms = 250.0;
  snapshot.window.finished = 2;

  Event started;
  started.t_us = 100.0;
  started.job_id = 1;
  started.kind = EventKind::JobStarted;
  started.value = 0.25;
  snapshot.events.push_back(started);
  Event finished;
  finished.t_us = 900.0;
  finished.job_id = 1;
  finished.kind = EventKind::JobFinished;
  finished.code = 5;
  finished.value = 0.8;
  snapshot.events.push_back(finished);
  snapshot.events_recorded = 6;
  return snapshot;
}

TEST(ExpositionTest, PrometheusNameSanitization) {
  EXPECT_EQ(prometheus_name("service.stage_ms.rank_search"),
            "crowdrank_service_stage_ms_rank_search");
  EXPECT_EQ(prometheus_name("a-b c%"), "crowdrank_a_b_c_");
  EXPECT_EQ(prometheus_name("ok_name:v1"), "crowdrank_ok_name:v1");
}

TEST(ExpositionTest, PrometheusGolden) {
  std::ostringstream os;
  write_prometheus(os, sample_snapshot());
  const std::string expected =
      "# TYPE crowdrank_service_outcome_completed counter\n"
      "crowdrank_service_outcome_completed 2\n"
      "# TYPE crowdrank_service_queue_depth gauge\n"
      "crowdrank_service_queue_depth 3\n"
      "# TYPE crowdrank_jobs_per_sec gauge\n"
      "crowdrank_jobs_per_sec 1.5\n"
      "# TYPE crowdrank_service_job_ms histogram\n"
      "crowdrank_service_job_ms_bucket{le=\"1\"} 1\n"
      "crowdrank_service_job_ms_bucket{le=\"4\"} 2\n"
      "crowdrank_service_job_ms_bucket{le=\"+Inf\"} 2\n"
      "crowdrank_service_job_ms_sum 3.5\n"
      "crowdrank_service_job_ms_count 2\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ExpositionTest, SnapshotJsonRoundTripsThroughTheParser) {
  std::ostringstream os;
  write_snapshot_json(os, sample_snapshot());
  const std::string line = os.str();
  // Single line, no trailing newline — the exporter adds the '\n'.
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const JsonValue root = parse_json(line);
  ASSERT_TRUE(root.is_object());
  EXPECT_DOUBLE_EQ(root.number_at("v"), 1.0);
  EXPECT_DOUBLE_EQ(root.number_at("seq"), 7.0);
  EXPECT_DOUBLE_EQ(root.number_at("t_us"), 1500.0);

  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->number_at("service.outcome.completed"), 2.0);

  const JsonValue* gauges = root.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->number_at("service.queue_depth"), 3.0);

  const JsonValue* histograms = root.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* job_ms = histograms->find("service.job_ms");
  ASSERT_NE(job_ms, nullptr);
  EXPECT_DOUBLE_EQ(job_ms->number_at("count"), 2.0);
  EXPECT_DOUBLE_EQ(job_ms->number_at("sum"), 3.5);
  EXPECT_DOUBLE_EQ(job_ms->number_at("min"), 0.5);
  EXPECT_DOUBLE_EQ(job_ms->number_at("max"), 3.0);
  // The shared quantile formula clamps to [min, max].
  EXPECT_GE(job_ms->number_at("p50"), 0.5);
  EXPECT_LE(job_ms->number_at("p50"), job_ms->number_at("p99"));
  EXPECT_LE(job_ms->number_at("p99"), 3.0);
  const JsonValue* buckets = job_ms->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->items.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets->items[0].items[0].number, 1.0);
  EXPECT_DOUBLE_EQ(buckets->items[0].items[1].number, 1.0);
  EXPECT_DOUBLE_EQ(buckets->items[1].items[0].number, 4.0);
  EXPECT_DOUBLE_EQ(buckets->items[1].items[1].number, 1.0);

  const JsonValue* window = root.find("window");
  ASSERT_NE(window, nullptr);
  EXPECT_DOUBLE_EQ(window->number_at("jobs_per_sec"), 1.5);
  EXPECT_DOUBLE_EQ(window->number_at("finished"), 2.0);

  EXPECT_DOUBLE_EQ(root.number_at("events_recorded"), 6.0);
  const JsonValue* events = root.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 2u);
  EXPECT_EQ(events->items[0].string_at("kind"), "job_started");
  EXPECT_EQ(events->items[1].string_at("kind"), "job_finished");
  EXPECT_DOUBLE_EQ(events->items[1].number_at("code"), 5.0);
}

TEST(ExpositionTest, PostmortemDocumentShape) {
  Postmortem postmortem;
  postmortem.job_id = 9;
  postmortem.executor = 1;
  postmortem.outcome = "failed";
  postmortem.stage = "rank_search";
  postmortem.reason = "injected fault";
  postmortem.t_us = 42.0;
  postmortem.config_echo.emplace_back("seed", std::int64_t{4});
  postmortem.config_echo.emplace_back("search", std::string("saps"));
  postmortem.config_echo.emplace_back("check_invariants", false);
  postmortem.hardening.emplace_back("input_votes", 126);
  trace::SpanRecord root_span;
  root_span.name = "service.job";
  root_span.dur_us = 360.0;
  root_span.parent = trace::SpanRecord::kNoParent;
  postmortem.spans.push_back(root_span);
  trace::SpanRecord child;
  child.name = "pipeline.harden";
  child.parent = 0;
  postmortem.spans.push_back(child);
  postmortem.events.push_back(Event{1.0, 9, EventKind::JobFinished, 5, 0.3});

  std::ostringstream os;
  write_postmortem_json(os, postmortem);
  const JsonValue doc = parse_json(os.str());
  EXPECT_DOUBLE_EQ(doc.number_at("v"), 1.0);
  EXPECT_DOUBLE_EQ(doc.number_at("job"), 9.0);
  EXPECT_EQ(doc.string_at("outcome"), "failed");
  EXPECT_EQ(doc.string_at("stage"), "rank_search");
  const JsonValue* config = doc.find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_DOUBLE_EQ(config->number_at("seed"), 4.0);
  EXPECT_EQ(config->string_at("search"), "saps");
  const JsonValue* spans = doc.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->items.size(), 2u);
  // The subtree root serializes parent -1; the child points at index 0.
  EXPECT_DOUBLE_EQ(spans->items[0].number_at("parent"), -1.0);
  EXPECT_DOUBLE_EQ(spans->items[1].number_at("parent"), 0.0);
  const JsonValue* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 1u);
  EXPECT_EQ(events->items[0].string_at("kind"), "job_finished");
}

TEST(ExpositionTest, EmptySnapshotStillSerializesValidJson) {
  TelemetrySnapshot snapshot;
  std::ostringstream os;
  write_snapshot_json(os, snapshot);
  const JsonValue root = parse_json(os.str());
  EXPECT_DOUBLE_EQ(root.number_at("v"), 1.0);
  ASSERT_NE(root.find("counters"), nullptr);
  EXPECT_TRUE(root.find("counters")->members.empty());
  ASSERT_NE(root.find("events"), nullptr);
  EXPECT_TRUE(root.find("events")->items.empty());
}

}  // namespace
}  // namespace crowdrank::obs
