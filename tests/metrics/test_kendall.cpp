// Unit + property tests for the Kendall-tau accuracy metric (§VI-A5).
#include "metrics/kendall.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

/// O(n^2) reference implementation.
std::size_t naive_kendall(const Ranking& a, const Ranking& b) {
  std::size_t discordant = 0;
  const std::size_t n = a.size();
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      const bool order_a = a.position_of(u) < a.position_of(v);
      const bool order_b = b.position_of(u) < b.position_of(v);
      if (order_a != order_b) ++discordant;
    }
  }
  return discordant;
}

TEST(Kendall, IdenticalRankingsHaveZeroDistance) {
  const Ranking r({3, 0, 2, 1});
  EXPECT_EQ(kendall_tau_distance(r, r), 0u);
  EXPECT_DOUBLE_EQ(normalized_kendall_tau_distance(r, r), 0.0);
  EXPECT_DOUBLE_EQ(ranking_accuracy(r, r), 1.0);
  EXPECT_DOUBLE_EQ(kendall_tau_coefficient(r, r), 1.0);
}

TEST(Kendall, ReversedRankingIsMaximal) {
  const Ranking r = Ranking::identity(5);
  const Ranking rev = r.reversed();
  EXPECT_EQ(kendall_tau_distance(r, rev), math::pair_count(5));
  EXPECT_DOUBLE_EQ(normalized_kendall_tau_distance(r, rev), 1.0);
  EXPECT_DOUBLE_EQ(ranking_accuracy(r, rev), 0.0);
  EXPECT_DOUBLE_EQ(kendall_tau_coefficient(r, rev), -1.0);
}

TEST(Kendall, SingleAdjacentSwap) {
  const Ranking a = Ranking::identity(4);
  const Ranking b({0, 2, 1, 3});
  EXPECT_EQ(kendall_tau_distance(a, b), 1u);
  EXPECT_DOUBLE_EQ(normalized_kendall_tau_distance(a, b), 1.0 / 6.0);
}

TEST(Kendall, IsSymmetric) {
  const Ranking a({2, 0, 3, 1});
  const Ranking b({1, 3, 0, 2});
  EXPECT_EQ(kendall_tau_distance(a, b), kendall_tau_distance(b, a));
}

TEST(Kendall, RejectsSizeMismatch) {
  EXPECT_THROW(
      kendall_tau_distance(Ranking::identity(3), Ranking::identity(4)),
      Error);
}

class KendallProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KendallProperty, MergeSortMatchesNaive) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pa = rng.permutation(n);
    const auto pb = rng.permutation(n);
    const Ranking a(std::vector<VertexId>(pa.begin(), pa.end()));
    const Ranking b(std::vector<VertexId>(pb.begin(), pb.end()));
    EXPECT_EQ(kendall_tau_distance(a, b), naive_kendall(a, b))
        << "n=" << n << " trial=" << trial;
  }
}

TEST_P(KendallProperty, TriangleInequality) {
  const std::size_t n = GetParam();
  Rng rng(2000 + n);
  const auto mk = [&] {
    const auto p = rng.permutation(n);
    return Ranking(std::vector<VertexId>(p.begin(), p.end()));
  };
  for (int trial = 0; trial < 10; ++trial) {
    const Ranking a = mk();
    const Ranking b = mk();
    const Ranking c = mk();
    EXPECT_LE(kendall_tau_distance(a, c),
              kendall_tau_distance(a, b) + kendall_tau_distance(b, c));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KendallProperty,
                         ::testing::Values(2, 3, 5, 8, 16, 50, 200));

TEST(Kendall, RandomPermutationAccuracyNearHalf) {
  Rng rng(77);
  const std::size_t n = 500;
  const Ranking truth = Ranking::identity(n);
  double total = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const auto p = rng.permutation(n);
    total +=
        ranking_accuracy(truth, Ranking(std::vector<VertexId>(p.begin(),
                                                              p.end())));
  }
  EXPECT_NEAR(total / trials, 0.5, 0.02);
}

}  // namespace
}  // namespace crowdrank
