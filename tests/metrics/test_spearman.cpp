// Unit tests for Spearman statistics.
#include "metrics/spearman.hpp"

#include <gtest/gtest.h>

#include "metrics/kendall.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

TEST(Spearman, IdenticalRankings) {
  const Ranking r({1, 0, 2});
  EXPECT_EQ(spearman_footrule(r, r), 0u);
  EXPECT_DOUBLE_EQ(normalized_spearman_footrule(r, r), 0.0);
  EXPECT_DOUBLE_EQ(spearman_rho(r, r), 1.0);
}

TEST(Spearman, ReversedRankings) {
  const Ranking r = Ranking::identity(4);
  const Ranking rev = r.reversed();
  // |0-3| + |1-2| + |2-1| + |3-0| = 8 = floor(16/2).
  EXPECT_EQ(spearman_footrule(r, rev), 8u);
  EXPECT_DOUBLE_EQ(normalized_spearman_footrule(r, rev), 1.0);
  EXPECT_DOUBLE_EQ(spearman_rho(r, rev), -1.0);
}

TEST(Spearman, KnownSmallCase) {
  const Ranking a = Ranking::identity(3);
  const Ranking b({0, 2, 1});
  EXPECT_EQ(spearman_footrule(a, b), 2u);
  // rho = 1 - 6*(0+1+1) / (3*8) = 0.5.
  EXPECT_DOUBLE_EQ(spearman_rho(a, b), 0.5);
}

TEST(Spearman, SymmetricMeasures) {
  Rng rng(5);
  const auto pa = rng.permutation(20);
  const auto pb = rng.permutation(20);
  const Ranking a(std::vector<VertexId>(pa.begin(), pa.end()));
  const Ranking b(std::vector<VertexId>(pb.begin(), pb.end()));
  EXPECT_EQ(spearman_footrule(a, b), spearman_footrule(b, a));
  EXPECT_DOUBLE_EQ(spearman_rho(a, b), spearman_rho(b, a));
}

TEST(Spearman, RhoBounds) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pa = rng.permutation(15);
    const auto pb = rng.permutation(15);
    const Ranking a(std::vector<VertexId>(pa.begin(), pa.end()));
    const Ranking b(std::vector<VertexId>(pb.begin(), pb.end()));
    const double rho = spearman_rho(a, b);
    EXPECT_GE(rho, -1.0);
    EXPECT_LE(rho, 1.0);
  }
}

TEST(Spearman, DiaconisGrahamInequality) {
  // For any two rankings: K <= F <= 2K, where K is the Kendall distance
  // and F the Spearman footrule (Diaconis & Graham 1977). A strong
  // cross-check that both metrics are implemented correctly.
  Rng rng(7);
  for (const std::size_t n : {2u, 5u, 20u, 100u}) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto pa = rng.permutation(n);
      const auto pb = rng.permutation(n);
      const Ranking a(std::vector<VertexId>(pa.begin(), pa.end()));
      const Ranking b(std::vector<VertexId>(pb.begin(), pb.end()));
      const std::size_t k = kendall_tau_distance(a, b);
      const std::size_t f = spearman_footrule(a, b);
      EXPECT_LE(k, f) << "n=" << n;
      EXPECT_LE(f, 2 * k) << "n=" << n;
    }
  }
}

TEST(Spearman, RejectsMismatchedSizes) {
  EXPECT_THROW(spearman_footrule(Ranking::identity(3), Ranking::identity(4)),
               Error);
  EXPECT_THROW(spearman_rho(Ranking::identity(3), Ranking::identity(4)),
               Error);
}

}  // namespace
}  // namespace crowdrank
