// Unit tests for the Ranking value type.
#include "metrics/ranking.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace crowdrank {
namespace {

TEST(Ranking, ValidConstruction) {
  const Ranking r({2, 0, 1});
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.object_at(0), 2u);
  EXPECT_EQ(r.object_at(2), 1u);
  EXPECT_EQ(r.position_of(2), 0u);
  EXPECT_EQ(r.position_of(1), 2u);
}

TEST(Ranking, RejectsInvalidPermutations) {
  EXPECT_THROW(Ranking({}), Error);
  EXPECT_THROW(Ranking({0, 0}), Error);
  EXPECT_THROW(Ranking({0, 2}), Error);
  EXPECT_THROW(Ranking({1, 2, 3}), Error);
}

TEST(Ranking, IdentityAndReversal) {
  const Ranking id = Ranking::identity(4);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(id.object_at(p), p);
  }
  const Ranking rev = id.reversed();
  EXPECT_EQ(rev.object_at(0), 3u);
  EXPECT_EQ(rev.object_at(3), 0u);
  EXPECT_EQ(rev.reversed(), id);
}

TEST(Ranking, FromScoresDescending) {
  const std::vector<double> scores{0.1, 0.9, 0.5};
  const Ranking r = Ranking::from_scores(scores);
  EXPECT_EQ(r.object_at(0), 1u);
  EXPECT_EQ(r.object_at(1), 2u);
  EXPECT_EQ(r.object_at(2), 0u);
}

TEST(Ranking, FromScoresTieBreaksById) {
  const std::vector<double> scores{0.5, 0.5, 0.9};
  const Ranking r = Ranking::from_scores(scores);
  EXPECT_EQ(r.object_at(0), 2u);
  EXPECT_EQ(r.object_at(1), 0u);  // tie: lower id first
  EXPECT_EQ(r.object_at(2), 1u);
}

TEST(Ranking, PositionsAreInverse) {
  const Ranking r({3, 1, 0, 2});
  for (std::size_t p = 0; p < r.size(); ++p) {
    EXPECT_EQ(r.position_of(r.object_at(p)), p);
  }
  for (VertexId v = 0; v < r.size(); ++v) {
    EXPECT_EQ(r.object_at(r.position_of(v)), v);
  }
}

TEST(Ranking, BoundsChecked) {
  const Ranking r({0, 1});
  EXPECT_THROW(r.object_at(2), Error);
  EXPECT_THROW(r.position_of(2), Error);
}

TEST(Ranking, EqualityIsStructural) {
  EXPECT_EQ(Ranking({0, 1, 2}), Ranking::identity(3));
  EXPECT_NE(Ranking({0, 2, 1}), Ranking::identity(3));
}

}  // namespace
}  // namespace crowdrank
