// Unit tests for the top-k extension metrics (§VIII future work).
#include "metrics/topk.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

TEST(TopKPrecision, PerfectAndDisjoint) {
  const Ranking truth = Ranking::identity(10);
  EXPECT_DOUBLE_EQ(top_k_precision(truth, truth, 3), 1.0);
  // Estimate puts the true bottom on top: head sets are disjoint.
  EXPECT_DOUBLE_EQ(top_k_precision(truth, truth.reversed(), 3), 0.0);
  // k = n: the sets always coincide.
  EXPECT_DOUBLE_EQ(top_k_precision(truth, truth.reversed(), 10), 1.0);
}

TEST(TopKPrecision, PartialOverlap) {
  const Ranking truth = Ranking::identity(5);
  const Ranking estimate({0, 3, 4, 1, 2});
  // true top-2 = {0,1}; estimate top-2 = {0,3}: overlap 1.
  EXPECT_DOUBLE_EQ(top_k_precision(truth, estimate, 2), 0.5);
}

TEST(TopKPrecision, OrderInsensitive) {
  const Ranking truth = Ranking::identity(6);
  const Ranking estimate({2, 0, 1, 3, 4, 5});  // top-3 permuted
  EXPECT_DOUBLE_EQ(top_k_precision(truth, estimate, 3), 1.0);
}

TEST(TopKPairAccuracy, HeadOrderScored) {
  const Ranking truth = Ranking::identity(6);
  const Ranking estimate({1, 0, 2, 3, 4, 5});  // one head swap
  // Pairs among true top-3 {0,1,2}: (0,1) flipped; (0,2), (1,2) fine.
  EXPECT_NEAR(top_k_pair_accuracy(truth, estimate, 3), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(top_k_pair_accuracy(truth, truth, 3), 1.0);
}

TEST(TopKPairAccuracy, IgnoresTailChaos) {
  const Ranking truth = Ranking::identity(8);
  const Ranking estimate({0, 1, 2, 7, 6, 5, 4, 3});  // tail reversed
  EXPECT_DOUBLE_EQ(top_k_pair_accuracy(truth, estimate, 3), 1.0);
}

TEST(TopKDisplacement, ZeroWhenHeadInPlace) {
  const Ranking truth = Ranking::identity(6);
  EXPECT_DOUBLE_EQ(top_k_displacement(truth, truth, 3), 0.0);
}

TEST(TopKDisplacement, ScalesWithHowFarHeadFell) {
  const Ranking truth = Ranking::identity(5);
  // True best object 0 pushed to the bottom.
  const Ranking bad({1, 2, 3, 4, 0});
  // k=1: displacement = 4 / (1 * 4) = 1.
  EXPECT_DOUBLE_EQ(top_k_displacement(truth, bad, 1), 1.0);
  const Ranking mild({1, 0, 2, 3, 4});
  EXPECT_DOUBLE_EQ(top_k_displacement(truth, mild, 1), 0.25);
}

TEST(TopK, RandomEstimatesScoreMidRange) {
  Rng rng(3);
  const Ranking truth = Ranking::identity(100);
  double precision = 0.0;
  double pair_acc = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const auto p = rng.permutation(100);
    const Ranking est(std::vector<VertexId>(p.begin(), p.end()));
    precision += top_k_precision(truth, est, 10);
    pair_acc += top_k_pair_accuracy(truth, est, 10);
  }
  // Random head overlap ~ k/n = 0.1; random pair order ~ 0.5.
  EXPECT_NEAR(precision / trials, 0.1, 0.06);
  EXPECT_NEAR(pair_acc / trials, 0.5, 0.1);
}

TEST(TopK, Validation) {
  const Ranking truth = Ranking::identity(5);
  EXPECT_THROW(top_k_precision(truth, truth, 0), Error);
  EXPECT_THROW(top_k_precision(truth, truth, 6), Error);
  EXPECT_THROW(top_k_pair_accuracy(truth, truth, 1), Error);
  EXPECT_THROW(top_k_displacement(truth, Ranking::identity(4), 2), Error);
}

}  // namespace
}  // namespace crowdrank
