// Integration tests: the full two-step strategy against baselines and the
// AMT-style study, on one shared simulated world per fixture.
#include <gtest/gtest.h>

#include "baselines/crowd_bt.hpp"
#include "baselines/quicksort_rank.hpp"
#include "baselines/repeat_choice.hpp"
#include "core/pipeline.hpp"
#include "crowd/amt_dataset.hpp"
#include "crowd/interactive.hpp"
#include "metrics/kendall.hpp"

namespace crowdrank {
namespace {

/// One simulated world shared by pipeline and baselines: same truth, same
/// workers, same assignment, same votes — apples to apples.
struct World {
  std::size_t n;
  std::size_t m;
  Ranking truth;
  std::vector<WorkerProfile> workers;
  TaskAssignment assignment_result;
  std::unique_ptr<HitAssignment> assignment;
  std::unique_ptr<SimulatedCrowd> crowd;
  VoteBatch votes;

  World(std::size_t n_, double ratio, QualityLevel level, std::uint64_t seed)
      : n(n_), m(30), truth(Ranking::identity(1 + n_)),
        assignment_result{TaskGraph(2), {}} {
    Rng rng(seed);
    auto perm = rng.permutation(n);
    truth = Ranking(std::vector<VertexId>(perm.begin(), perm.end()));
    workers =
        sample_worker_pool(m, {QualityDistribution::Gaussian, level}, rng);
    const BudgetModel budget =
        BudgetModel::for_selection_ratio(n, ratio, 0.025, 3);
    assignment_result =
        generate_task_assignment(n, budget.unique_task_count(), rng);
    std::vector<Edge> tasks(assignment_result.graph.edges().begin(),
                            assignment_result.graph.edges().end());
    assignment =
        std::make_unique<HitAssignment>(tasks, HitConfig{5, 3}, m, rng);
    crowd = std::make_unique<SimulatedCrowd>(truth, workers);
    Rng vote_rng(seed + 1);
    votes = crowd->collect(*assignment, vote_rng);
  }
};

TEST(EndToEnd, PipelineBeatsHeuristicBaselinesAtHalfBudget) {
  const World w(60, 0.5, QualityLevel::Medium, 7);
  Rng rng(99);
  const InferenceEngine engine;
  const auto inferred = engine.infer(w.votes, w.n, w.m, *w.assignment, rng);
  const double saps_acc = ranking_accuracy(w.truth, inferred.ranking);

  Rng rc_rng(1);
  const double rc_acc = ranking_accuracy(
      w.truth, repeat_choice_from_votes(w.votes, w.n, w.m, rc_rng));
  Rng qs_rng(2);
  const double qs_acc =
      ranking_accuracy(w.truth, quicksort_ranking(w.votes, w.n, qs_rng));

  EXPECT_GT(saps_acc, 0.85);
  EXPECT_GT(saps_acc, rc_acc + 0.1);
  EXPECT_GT(saps_acc, qs_acc + 0.1);
}

TEST(EndToEnd, CrowdBtIsComparableButInteractive) {
  const World w(40, 0.5, QualityLevel::Medium, 11);
  Rng rng(5);
  const InferenceEngine engine;
  const auto inferred = engine.infer(w.votes, w.n, w.m, *w.assignment, rng);
  const double saps_acc = ranking_accuracy(w.truth, inferred.ranking);

  // CrowdBT gets the same dollars interactively.
  const BudgetModel budget = BudgetModel::for_unique_tasks(
      w.assignment->unique_task_count(), 0.025, 3);
  Rng bt_rng(6);
  InteractiveCrowd oracle(*w.crowd, budget, bt_rng);
  CrowdBtConfig config;
  config.candidate_sample_size = 200;
  const auto bt = crowd_bt_interactive(oracle, w.n, w.m, config, bt_rng);
  const double bt_acc = ranking_accuracy(w.truth, bt.ranking);

  // Table-I shape: both are strong; neither collapses.
  EXPECT_GT(saps_acc, 0.8);
  EXPECT_GT(bt_acc, 0.7);
}

TEST(EndToEnd, AmtStudyTapsVersusSaps) {
  // §VI-D: no ground truth; report TAPS-vs-SAPS agreement instead.
  Rng rng(21);
  const AmtSmileDataset ds({.num_images = 10}, rng);
  const std::size_t n = ds.num_images();
  auto workers = sample_worker_pool(
      100, {QualityDistribution::Uniform, QualityLevel::Medium}, rng);
  const auto assignment_result = generate_all_pairs_assignment(n);
  std::vector<Edge> tasks(assignment_result.graph.edges().begin(),
                          assignment_result.graph.edges().end());
  const HitAssignment assignment(tasks, HitConfig{5, 25}, 100, rng);
  const VoteBatch votes = ds.collect(assignment, workers, rng);

  InferenceConfig config;
  config.search = RankSearchMethod::Taps;
  const InferenceEngine taps_engine(config);
  Rng taps_rng(1);
  const auto taps = taps_engine.infer(votes, n, 100, assignment, taps_rng);

  config.search = RankSearchMethod::Saps;
  config.saps.iterations = 4000;
  const InferenceEngine saps_engine(config);
  Rng saps_rng(1);
  const auto saps = saps_engine.infer(votes, n, 100, assignment, saps_rng);

  // "For most cases, SAPS generates the same ranking result as TAPS."
  const double agreement =
      ranking_accuracy(taps.ranking, saps.ranking);
  EXPECT_GT(agreement, 0.9);
  // SAPS can never report a better probability than the exact optimum.
  EXPECT_LE(saps.log_probability, taps.log_probability + 1e-9);
}

TEST(EndToEnd, NonInteractiveIsOneShot) {
  // The entire pipeline consumes exactly the votes of one collection round
  // — no part of inference may query the crowd again. (Compile-time-ish
  // guarantee: InferenceEngine::infer takes a const VoteBatch; this test
  // documents the budget arithmetic end to end.)
  const World w(30, 0.25, QualityLevel::High, 13);
  const std::size_t expected_answers =
      w.assignment->unique_task_count() * 3;
  EXPECT_EQ(w.votes.size(), expected_answers);
  const BudgetModel budget = BudgetModel::for_unique_tasks(
      w.assignment->unique_task_count(), 0.025, 3);
  EXPECT_NEAR(budget.total_cost(),
              0.025 * 3 * static_cast<double>(
                              w.assignment->unique_task_count()),
              1e-9);
}

TEST(EndToEnd, AccuracyOrderingAcrossQualityLevels) {
  double acc[3] = {0, 0, 0};
  const QualityLevel levels[3] = {QualityLevel::High, QualityLevel::Medium,
                                  QualityLevel::Low};
  for (int lvl = 0; lvl < 3; ++lvl) {
    for (std::uint64_t seed = 40; seed < 43; ++seed) {
      const World w(40, 0.4, levels[lvl], seed);
      Rng rng(seed);
      const InferenceEngine engine;
      const auto inferred =
          engine.infer(w.votes, w.n, w.m, *w.assignment, rng);
      acc[lvl] += ranking_accuracy(w.truth, inferred.ranking);
    }
  }
  // Fig.-6 shape: accuracy does not improve when quality degrades.
  EXPECT_GE(acc[0] + 0.15, acc[1]);
  EXPECT_GE(acc[1] + 0.15, acc[2]);
  EXPECT_GT(acc[0] / 3.0, 0.85);
}

}  // namespace
}  // namespace crowdrank
