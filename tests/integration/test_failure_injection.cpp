// Failure-injection tests: adversarial and degenerate crowds that a
// deployed requester will eventually meet. The system must stay
// well-defined (valid full ranking out, no crashes) and degrade the way
// the model predicts.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "metrics/kendall.hpp"

namespace crowdrank {
namespace {

/// Builds votes for every assigned (task, worker) pair using a caller
/// policy: policy(worker, i, j, truth_forward) -> prefers_i.
template <typename Policy>
VoteBatch make_votes(const HitAssignment& assignment, const Ranking& truth,
                     Policy&& policy) {
  VoteBatch votes;
  const auto& tasks = assignment.tasks();
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const Edge& e = tasks[t];
    const bool forward =
        truth.position_of(e.first) < truth.position_of(e.second);
    for (const WorkerId k : assignment.workers_for_task(t)) {
      votes.push_back(Vote{k, e.first, e.second,
                           policy(k, e.first, e.second, forward)});
    }
  }
  return votes;
}

struct Fixture {
  std::size_t n = 30;
  std::size_t m = 9;
  Ranking truth = Ranking::identity(30);
  std::unique_ptr<HitAssignment> assignment;

  Fixture() {
    Rng rng(3);
    auto perm = rng.permutation(n);
    truth = Ranking(std::vector<VertexId>(perm.begin(), perm.end()));
    const auto ta = generate_task_assignment(n, 200, rng);
    std::vector<Edge> tasks(ta.graph.edges().begin(),
                            ta.graph.edges().end());
    assignment = std::make_unique<HitAssignment>(tasks, HitConfig{4, 3}, m,
                                                 rng);
  }

  double run(const VoteBatch& votes) const {
    Rng rng(17);
    const InferenceEngine engine;
    const auto result = engine.infer(votes, n, m, *assignment, rng);
    EXPECT_EQ(result.ranking.size(), n);
    return ranking_accuracy(truth, result.ranking);
  }
};

TEST(FailureInjection, MinorityOfAlwaysWrongWorkersIsAbsorbed) {
  const Fixture f;
  // Workers 0-5 truthful, 6-8 always lie.
  const auto votes = make_votes(*f.assignment, f.truth,
                                [](WorkerId k, VertexId, VertexId,
                                   bool forward) {
                                  return k >= 6 ? !forward : forward;
                                });
  EXPECT_GT(f.run(votes), 0.85);
}

TEST(FailureInjection, AllWorkersAdversarialProducesReversedRanking) {
  const Fixture f;
  const auto votes = make_votes(
      *f.assignment, f.truth,
      [](WorkerId, VertexId, VertexId, bool forward) { return !forward; });
  // Unanimous lies are indistinguishable from a reversed ground truth:
  // the output must be strongly anti-correlated, not garbage.
  EXPECT_LT(f.run(votes), 0.15);
}

TEST(FailureInjection, CoinFlipCrowdYieldsChanceAccuracy) {
  const Fixture f;
  Rng noise(5);
  const auto votes = make_votes(*f.assignment, f.truth,
                                [&](WorkerId, VertexId, VertexId, bool) {
                                  return noise.bernoulli(0.5);
                                });
  const double acc = f.run(votes);
  EXPECT_GT(acc, 0.25);
  EXPECT_LT(acc, 0.75);
}

TEST(FailureInjection, SingleWorkerPerTaskStillWorks) {
  Rng rng(7);
  const std::size_t n = 20;
  auto perm = rng.permutation(n);
  const Ranking truth(std::vector<VertexId>(perm.begin(), perm.end()));
  const auto ta = generate_task_assignment(n, 120, rng);
  std::vector<Edge> tasks(ta.graph.edges().begin(), ta.graph.edges().end());
  const HitAssignment assignment(tasks, HitConfig{3, 1}, 5, rng);  // w = 1
  const auto votes = make_votes(assignment, truth,
                                [](WorkerId, VertexId, VertexId,
                                   bool forward) { return forward; });
  Rng infer_rng(8);
  const InferenceEngine engine;
  const auto result = engine.infer(votes, n, 5, assignment, infer_rng);
  EXPECT_GT(ranking_accuracy(truth, result.ranking), 0.9);
}

TEST(FailureInjection, DuplicateVotesFromOneWorkerAreCounted) {
  // §II allows the same comparison to appear in multiple HITs, so a worker
  // can legitimately answer a pair twice. The pipeline must accept it.
  const Fixture f;
  auto votes = make_votes(*f.assignment, f.truth,
                          [](WorkerId, VertexId, VertexId, bool forward) {
                            return forward;
                          });
  const std::size_t original = votes.size();
  votes.insert(votes.end(), votes.begin(), votes.begin() + 50);
  EXPECT_EQ(votes.size(), original + 50);
  EXPECT_GT(f.run(votes), 0.9);
}

TEST(FailureInjection, ContrariansOnOneRegionOnly) {
  const Fixture f;
  // Everybody truthful except on pairs touching objects 0-4, where
  // workers 6-8 lie: local damage must stay local-ish.
  const auto votes = make_votes(
      *f.assignment, f.truth,
      [](WorkerId k, VertexId i, VertexId j, bool forward) {
        const bool targeted = (i < 5 || j < 5) && k >= 6;
        return targeted ? !forward : forward;
      });
  EXPECT_GT(f.run(votes), 0.8);
}

TEST(FailureInjection, LazyWorkerWithOneVote) {
  // A worker who appears exactly once must not destabilize quality
  // estimation (their chi2 dof is 1).
  const Fixture f;
  auto votes = make_votes(*f.assignment, f.truth,
                          [](WorkerId, VertexId, VertexId, bool forward) {
                            return forward;
                          });
  // Worker id m-1 = 8 replaced by a single extra vote from a lazy worker
  // is not expressible through the assignment; instead just verify a
  // one-vote worker id appearing in the batch is handled: reuse worker 8
  // but check the quality vector is well-formed after inference.
  Rng rng(19);
  const InferenceEngine engine;
  const auto result = engine.infer(votes, f.n, f.m, *f.assignment, rng);
  for (const double q : result.step1.worker_quality) {
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
}

}  // namespace
}  // namespace crowdrank
