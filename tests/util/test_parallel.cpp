// Unit tests for the parallel execution engine (thread pool,
// parallel_for / parallel_reduce, determinism guarantees).
#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace crowdrank {
namespace {

/// Restores the ambient thread count after each test so the suite's
/// ordering never leaks pool state.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_thread_count(configured_thread_count()); }
};

TEST_F(ParallelTest, SetThreadCountIsObservable) {
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
}

TEST_F(ParallelTest, ResizeRejectsZero) {
  EXPECT_THROW(set_thread_count(0), Error);
}

TEST_F(ParallelTest, ParallelForCoversEveryIndexOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_thread_count(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(0, kN, 7, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST_F(ParallelTest, ParallelForHandlesEmptyAndTinyRanges) {
  set_thread_count(4);
  bool ran = false;
  parallel_for(5, 5, 8, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);

  std::size_t total = 0;
  parallel_for(10, 13, 100, [&](std::size_t b, std::size_t e) {
    total += e - b;  // single chunk: runs inline on the caller
  });
  EXPECT_EQ(total, 3u);
}

TEST_F(ParallelTest, ReduceMatchesSerialSumAtAnyThreadCount) {
  constexpr std::size_t kN = 12345;
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    values[i] = 0.1 * static_cast<double>(i % 97) + 1e-3;
  }
  const auto chunk_sum = [&](std::size_t b, std::size_t e) {
    double s = 0.0;
    for (std::size_t i = b; i < e; ++i) s += values[i];
    return s;
  };
  const auto add = [](double a, double b) { return a + b; };

  set_thread_count(1);
  const double serial =
      parallel_reduce(std::size_t{0}, kN, 256, 0.0, chunk_sum, add);
  set_thread_count(4);
  const double parallel =
      parallel_reduce(std::size_t{0}, kN, 256, 0.0, chunk_sum, add);

  // Identical chunking + in-order combine => bitwise-equal doubles.
  EXPECT_EQ(serial, parallel);
}

TEST_F(ParallelTest, NestedParallelForRunsInlineWithoutDeadlock) {
  set_thread_count(4);
  std::atomic<std::size_t> total{0};
  parallel_for(0, 8, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      // Nested region: must run inline on this worker, not re-enter the
      // pool (which would deadlock or oversubscribe).
      parallel_for(0, 10, 2, [&](std::size_t nb, std::size_t ne) {
        total.fetch_add(ne - nb, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 80u);
}

TEST_F(ParallelTest, ExceptionsInsideRegionPropagateToCaller) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_thread_count(threads);
    EXPECT_THROW(
        parallel_for(0, 64, 1,
                     [&](std::size_t b, std::size_t) {
                       if (b == 13) {
                         throw Error("boom");
                       }
                     }),
        Error);
    // The pool must stay usable after a failed region.
    std::atomic<std::size_t> count{0};
    parallel_for(0, 16, 1, [&](std::size_t b, std::size_t e) {
      count.fetch_add(e - b, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 16u);
  }
}

TEST_F(ParallelTest, ConfiguredThreadCountIsPositive) {
  EXPECT_GE(configured_thread_count(), 1u);
}

TEST_F(ParallelTest, ConcurrentLogWritesNeverInterleaveMidLine) {
  // Logger::write is mutex-guarded (util/logging.hpp); lines written from
  // every pool lane at once must come out whole. Capture stderr via an
  // rdbuf swap, fan out writers, then check each captured line verbatim.
  // This test (in the TSan preset's suite) also gives the sanitizer a
  // concurrent-logging workload to chew on.
  set_thread_count(4);
  Logger& logger = Logger::instance();
  const LogLevel old_level = logger.level();
  logger.set_level(LogLevel::Info);

  std::ostringstream captured;
  std::streambuf* old_buf = std::cerr.rdbuf(captured.rdbuf());
  parallel_for(0, 64, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      logger.write(LogLevel::Info,
                   "message-" + std::to_string(i) + "-payload");
    }
  });
  std::cerr.rdbuf(old_buf);
  logger.set_level(old_level);

  std::istringstream lines(captured.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    // "[INFO ] message-<i>-payload" with nothing spliced into the middle.
    ASSERT_EQ(line.rfind("[INFO ] message-", 0), 0u) << line;
    ASSERT_EQ(line.substr(line.size() - 8), "-payload") << line;
  }
  EXPECT_EQ(count, 64u);
}

}  // namespace
}  // namespace crowdrank
