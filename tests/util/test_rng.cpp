// Unit tests for the deterministic RNG and its samplers.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace crowdrank {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  EXPECT_NE(rng(), rng());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformRangeRejectsEmptyInterval) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(1.0, 1.0), Error);
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
}

TEST(Rng, UniformIndexCoversDomainWithoutBias) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.uniform_index(10)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(19);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeSigma) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(31);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliClampsProbability) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(37);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(41);
  const auto p = rng.permutation(100);
  std::set<std::size_t> unique(p.begin(), p.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(Rng, PermutationIsShuffled) {
  Rng rng(43);
  const auto p = rng.permutation(100);
  std::vector<std::size_t> sorted(100);
  std::iota(sorted.begin(), sorted.end(), 0u);
  EXPECT_NE(p, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(47);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = rng.sample_without_replacement(100, 20);
    std::set<std::size_t> unique(s.begin(), s.end());
    EXPECT_EQ(unique.size(), 20u);
    EXPECT_LT(*unique.rbegin(), 100u);
  }
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(53);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), Error);
}

TEST(Rng, SampleWithoutReplacementIsUnbiased) {
  Rng rng(59);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (const auto v : rng.sample_without_replacement(10, 3)) {
      ++counts[v];
    }
  }
  // Each element appears with probability 3/10.
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
  }
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(61);
  std::vector<int> v{1, 2, 2, 3, 5, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(67);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(71);
  Rng b(71);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fa(), fb());
  }
}

}  // namespace
}  // namespace crowdrank
