// The vectorized kernel layer (util/simd.hpp): backend dispatch control
// and, when AVX2 is available, bitwise identity between the two backends
// over odd lengths, unaligned slices, and adversarial values — the
// property the engine's cross-machine determinism contract rests on.
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "util/math.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

/// Restores the dispatch the environment/CPU derived, whatever a test
/// forced mid-run.
class SimdTest : public ::testing::Test {
 protected:
  void TearDown() override { simd::reset_backend(); }
};

/// Fills `v` with a mix of magnitudes spanning ~30 orders plus sign flips;
/// deterministic per seed.
std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mag = std::pow(10.0, rng.uniform() * 30.0 - 15.0);
    v[i] = (rng.bernoulli(0.5) ? mag : -mag) * rng.uniform();
  }
  return v;
}

/// Bitwise equality (distinguishes +0.0 / -0.0 and compares NaN payloads).
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST_F(SimdTest, BackendControl) {
  // Scalar is always available and forcing it must stick.
  EXPECT_TRUE(simd::set_backend(simd::Backend::Scalar));
  EXPECT_EQ(simd::active_backend(), simd::Backend::Scalar);
  if (simd::avx2_supported()) {
    EXPECT_TRUE(simd::set_backend(simd::Backend::Avx2));
    EXPECT_EQ(simd::active_backend(), simd::Backend::Avx2);
  } else {
    // Unavailable backends are refused and the dispatch is untouched.
    EXPECT_FALSE(simd::set_backend(simd::Backend::Avx2));
    EXPECT_EQ(simd::active_backend(), simd::Backend::Scalar);
  }
  simd::reset_backend();
  if (!simd::avx2_supported()) {
    EXPECT_EQ(simd::active_backend(), simd::Backend::Scalar);
  }
}

TEST_F(SimdTest, BackendNames) {
  EXPECT_STREQ(simd::backend_name(simd::Backend::Scalar), "scalar");
  EXPECT_STREQ(simd::backend_name(simd::Backend::Avx2), "avx2");
}

TEST_F(SimdTest, LogPinnedMatchesLibmClosely) {
  // The pinned log is not libm's log, but it must stay within 1 ulp of it
  // on normal inputs (and be exact at the anchor points).
  EXPECT_EQ(simd::log_pinned(1.0), 0.0);
  EXPECT_TRUE(same_bits(simd::log_pinned(0.5), std::log(0.5)));
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const double x = std::pow(10.0, rng.uniform() * 60.0 - 30.0);
    const double pinned = simd::log_pinned(x);
    const double libm = std::log(x);
    EXPECT_NEAR(pinned, libm, std::abs(libm) * 1e-15 + 1e-300)
        << "x = " << x;
  }
  // Subnormal inputs take the 2^54 pre-scale path.
  const double tiny = std::numeric_limits<double>::denorm_min();
  EXPECT_NEAR(simd::log_pinned(tiny), std::log(tiny), 1e-12);
}

TEST_F(SimdTest, SafeLogRoutesThroughPinnedLog) {
  EXPECT_EQ(math::safe_log(1.0), 0.0);
  EXPECT_TRUE(same_bits(math::safe_log(0.5), simd::log_pinned(0.5)));
  EXPECT_EQ(math::safe_log(0.0), -745.0);
  EXPECT_EQ(math::safe_log(-3.0), -745.0);
  EXPECT_EQ(math::safe_log(std::numeric_limits<double>::infinity()),
            std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(
      math::safe_log(std::numeric_limits<double>::quiet_NaN())));
}

// ---- backend identity --------------------------------------------------
// Each kernel runs on both backends over every length in [0, 67] (odd
// tails, sub-vector sizes) and an unaligned slice, and the outputs must
// match bit for bit. Skipped (scalar vs scalar) when AVX2 is unavailable.

template <typename KernelFn>
void expect_backend_identity(const KernelFn& run_kernel) {
  if (!simd::avx2_supported()) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{3}, std::size_t{4}, std::size_t{5},
                        std::size_t{7}, std::size_t{8}, std::size_t{13},
                        std::size_t{31}, std::size_t{64}, std::size_t{67}}) {
    for (std::size_t offset : {std::size_t{0}, std::size_t{1}}) {
      ASSERT_TRUE(simd::set_backend(simd::Backend::Scalar));
      const std::vector<double> scalar_out = run_kernel(n, offset);
      ASSERT_TRUE(simd::set_backend(simd::Backend::Avx2));
      const std::vector<double> avx2_out = run_kernel(n, offset);
      ASSERT_EQ(scalar_out.size(), avx2_out.size());
      for (std::size_t i = 0; i < scalar_out.size(); ++i) {
        ASSERT_TRUE(same_bits(scalar_out[i], avx2_out[i]))
            << "n=" << n << " offset=" << offset << " i=" << i << ": "
            << scalar_out[i] << " vs " << avx2_out[i];
      }
    }
  }
}

TEST_F(SimdTest, AxpyBackendIdentity) {
  const std::vector<double> x = random_values(128, 11);
  const std::vector<double> base = random_values(128, 12);
  expect_backend_identity([&](std::size_t n, std::size_t offset) {
    std::vector<double> out(base.begin() + offset,
                            base.begin() + offset + n);
    simd::axpy(out.data(), x.data() + offset, 1.7357, n);
    return out;
  });
}

TEST_F(SimdTest, Axpy4BackendIdentity) {
  const std::vector<double> r0 = random_values(128, 21);
  const std::vector<double> r1 = random_values(128, 22);
  const std::vector<double> r2 = random_values(128, 23);
  const std::vector<double> r3 = random_values(128, 24);
  const std::vector<double> base = random_values(128, 25);
  expect_backend_identity([&](std::size_t n, std::size_t offset) {
    std::vector<double> out(base.begin() + offset,
                            base.begin() + offset + n);
    simd::axpy4(out.data(), r0.data() + offset, r1.data() + offset,
                r2.data() + offset, r3.data() + offset, 0.3, -1.1, 2.7,
                -0.04, n);
    return out;
  });
}

TEST_F(SimdTest, GemmAccumBackendIdentity) {
  // The register-tiled product kernel behind Matrix::multiply. Shapes are
  // chosen to hit every tile path in the AVX2 build: 4-row blocks plus
  // 1..3-row tails, 8-wide column strips plus 16-wide inner strips and
  // 1..7-wide tails, and k tails. Zeros sprinkled into `a` exercise the
  // zero-skip branch, and the strides exceed the logical widths so padding
  // lanes would be caught if a backend ever read or wrote past a row.
  if (!simd::avx2_supported()) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  for (const std::size_t rows : {std::size_t{1}, std::size_t{3},
                                 std::size_t{4}, std::size_t{5},
                                 std::size_t{9}}) {
    for (const std::size_t k_len : {std::size_t{0}, std::size_t{1},
                                    std::size_t{7}, std::size_t{16},
                                    std::size_t{21}}) {
      for (const std::size_t w : {std::size_t{1}, std::size_t{5},
                                  std::size_t{8}, std::size_t{19},
                                  std::size_t{37}}) {
        const std::size_t a_stride = k_len + 3;
        const std::size_t b_stride = w + 2;
        const std::size_t out_stride = w + 1;
        std::vector<double> a =
            random_values(rows * a_stride, 71 + rows + k_len);
        for (std::size_t i = 0; i < a.size(); i += 3) {
          a[i] = 0.0;  // zero-skip branch
        }
        const std::vector<double> b =
            random_values(k_len * b_stride + w, 72 + k_len + w);
        const std::vector<double> base =
            random_values(rows * out_stride, 73 + rows + w);
        const auto run = [&] {
          std::vector<double> out = base;
          simd::gemm_accum(out.data(), out_stride, rows, a.data(), a_stride,
                           b.data(), k_len, b_stride, w);
          return out;
        };
        ASSERT_TRUE(simd::set_backend(simd::Backend::Scalar));
        const std::vector<double> scalar_out = run();
        ASSERT_TRUE(simd::set_backend(simd::Backend::Avx2));
        const std::vector<double> avx2_out = run();
        for (std::size_t i = 0; i < scalar_out.size(); ++i) {
          ASSERT_TRUE(same_bits(scalar_out[i], avx2_out[i]))
              << "rows=" << rows << " k=" << k_len << " w=" << w
              << " i=" << i << ": " << scalar_out[i] << " vs "
              << avx2_out[i];
        }
      }
    }
  }
}

TEST_F(SimdTest, AddAndScaleBackendIdentity) {
  const std::vector<double> x = random_values(128, 31);
  const std::vector<double> base = random_values(128, 32);
  expect_backend_identity([&](std::size_t n, std::size_t offset) {
    std::vector<double> out(base.begin() + offset,
                            base.begin() + offset + n);
    simd::add(out.data(), x.data() + offset, n);
    simd::scale(out.data(), -0.731, n);
    return out;
  });
}

TEST_F(SimdTest, MaxReductionsBackendIdentity) {
  std::vector<double> a = random_values(128, 41);
  const std::vector<double> b = random_values(128, 42);
  // Seed corner cases into the prefix: NaN is ignored by the fold, -0.0
  // never displaces the +0.0 seed.
  a[0] = std::numeric_limits<double>::quiet_NaN();
  a[1] = -0.0;
  expect_backend_identity([&](std::size_t n, std::size_t offset) {
    return std::vector<double>{
        simd::max0(a.data() + offset, n),
        simd::max_abs_diff(a.data() + offset, b.data() + offset, n)};
  });
}

TEST_F(SimdTest, NegLogClampedBackendIdentity) {
  std::vector<double> w = random_values(128, 51);
  // Adversarial prefix: zeros, negatives, non-finites, subnormals — the
  // full safe_log branch set.
  w[0] = 0.0;
  w[1] = -2.5;
  w[2] = std::numeric_limits<double>::infinity();
  w[3] = std::numeric_limits<double>::quiet_NaN();
  w[4] = std::numeric_limits<double>::denorm_min();
  w[5] = -0.0;
  w[6] = 1.0;
  w[7] = std::exp(-800.0);  // log below the floor -> clamped
  expect_backend_identity([&](std::size_t n, std::size_t offset) {
    std::vector<double> out(n, 0.0);
    simd::neg_log_clamped(out.data(), w.data() + offset, n, -745.0);
    return out;
  });
}

TEST_F(SimdTest, NegLogClampedMatchesSafeLog) {
  // The batch kernel must agree with the scalar safe_log element-wise on
  // every backend (this is what keeps the SAPS cost cache pinned).
  std::vector<double> w = random_values(512, 61);
  w[0] = 0.0;
  w[1] = -1.0;
  w[2] = std::numeric_limits<double>::infinity();
  w[3] = std::numeric_limits<double>::denorm_min();
  for (const simd::Backend backend :
       {simd::Backend::Scalar, simd::Backend::Avx2}) {
    if (!simd::set_backend(backend)) {
      continue;
    }
    std::vector<double> out(w.size(), 0.0);
    simd::neg_log_clamped(out.data(), w.data(), w.size(), -745.0);
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double expected = -math::safe_log(w[i]);
      if (std::isnan(expected)) {
        EXPECT_TRUE(std::isnan(out[i])) << "i=" << i;
      } else {
        EXPECT_TRUE(same_bits(out[i], expected))
            << "i=" << i << " w=" << w[i];
      }
    }
  }
}

TEST_F(SimdTest, PathCostSumKnownAnswer) {
  // 3x3 cost matrix, path 0 -> 2 -> 1: costs[0*3+2] + costs[2*3+1].
  const double costs[9] = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  const std::size_t path[3] = {0, 2, 1};
  EXPECT_EQ(simd::path_cost_sum(costs, path, 3, 3), 2.0 + 7.0);
  EXPECT_EQ(simd::path_cost_sum(costs, path, 1, 3), 0.0);
  EXPECT_EQ(simd::path_cost_sum(costs, path, 0, 3), 0.0);
}

}  // namespace
}  // namespace crowdrank
