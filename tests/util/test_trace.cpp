// Tracing/metrics layer tests: span tree shape, sharded-counter merges
// under the thread pool, exporter JSON well-formedness (checked with a
// small recursive-descent parser below), and the zero-allocation guarantee
// of the disabled-sink path (checked with the global operator new override
// at the bottom of this file — which is why this suite is its own binary).
//
// The allocator overrides route through malloc/free, which GCC's inliner
// misreads as new/free mismatches at the use sites — a false positive for
// replaced global allocators, silenced file-wide here.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/build_info.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace {

/// Global allocation counter fed by the operator new overrides below.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

namespace crowdrank {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON parser: enough to validate and round-trip the exporters'
// output without external dependencies.
// ---------------------------------------------------------------------

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) {
      throw std::runtime_error("trailing garbage after JSON value");
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::String;
      v.str = string();
      return v;
    }
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      literal("null");
      return JsonValue{};
    }
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) throw std::runtime_error("unclosed string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              throw std::runtime_error("bad \\u escape");
            }
            // Validated but folded to '?': the exporters only \u-escape
            // control characters, which none of these tests mint.
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              if (!((h >= '0' && h <= '9') || (h >= 'a' && h <= 'f') ||
                    (h >= 'A' && h <= 'F'))) {
                throw std::runtime_error("bad \\u escape digit");
              }
            }
            out += '?';
            break;
          }
          default:
            throw std::runtime_error("unknown escape");
        }
        continue;
      }
      out += c;
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
      v.boolean = false;
    }
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("expected a number");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        throw std::runtime_error("bad literal");
      }
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

// ---------------------------------------------------------------------
// Span tree
// ---------------------------------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    trace::set_sink(nullptr);
    set_thread_count(configured_thread_count());
  }
};

TEST_F(TraceTest, SpansNestUnderTheEnclosingSpanOfTheSameThread) {
  trace::TraceSink sink;
  {
    trace::ScopedSink scoped(&sink);
    trace::Span outer("outer");
    {
      trace::Span middle("middle");
      trace::Span inner("inner");
    }
    trace::Span sibling("sibling");
  }
  const auto spans = sink.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Open order: outer, middle, inner, sibling.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, trace::SpanRecord::kNoParent);
  EXPECT_EQ(spans[1].name, "middle");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[2].name, "inner");
  EXPECT_EQ(spans[2].parent, 1u);
  EXPECT_EQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[3].parent, 0u);
  for (const auto& s : spans) {
    EXPECT_GE(s.dur_us, 0.0) << s.name;
    EXPECT_GE(s.start_us, 0.0) << s.name;
  }
  // A child cannot start before its parent.
  EXPECT_GE(spans[1].start_us, spans[0].start_us);
  EXPECT_GE(spans[2].start_us, spans[1].start_us);
}

TEST_F(TraceTest, SpanAttributesAreRecordedWithTheirTypes) {
  trace::TraceSink sink;
  {
    trace::ScopedSink scoped(&sink);
    trace::Span span("attrs");
    span.set_attr("count", std::uint64_t{42});
    span.set_attr("ratio", 0.5);
    span.set_attr("ok", true);
    span.set_attr("label", "hello");
  }
  const auto spans = sink.spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 4u);
  EXPECT_EQ(spans[0].attrs[0].first, "count");
  EXPECT_EQ(std::get<std::int64_t>(spans[0].attrs[0].second), 42);
  EXPECT_EQ(std::get<double>(spans[0].attrs[1].second), 0.5);
  EXPECT_EQ(std::get<bool>(spans[0].attrs[2].second), true);
  EXPECT_EQ(std::get<std::string>(spans[0].attrs[3].second), "hello");
}

TEST_F(TraceTest, StepScopeFeedsThePhaseTimerIdenticallyToScopedPhase) {
  PhaseTimer timer;
  trace::TraceSink sink;
  {
    trace::ScopedSink scoped(&sink);
    trace::StepScope scope(timer, "step1_truth_discovery");
  }
  // Same phase name lands in the timer whether or not tracing is on, so
  // Fig.-4 breakdowns are unchanged; the span mirrors it in the trace.
  EXPECT_EQ(timer.phases(),
            std::vector<std::string>{"step1_truth_discovery"});
  EXPECT_GE(timer.seconds("step1_truth_discovery"), 0.0);
  const auto spans = sink.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "step1_truth_discovery");
}

TEST_F(TraceTest, StepScopeWithoutSinkStillFeedsTheTimer) {
  PhaseTimer timer;
  { trace::StepScope scope(timer, "step2_smoothing"); }
  EXPECT_EQ(timer.phases(), std::vector<std::string>{"step2_smoothing"});
}

// ---------------------------------------------------------------------
// Metrics registry under the pool
// ---------------------------------------------------------------------

TEST_F(TraceTest, CounterMergesShardsCorrectlyAcrossPoolThreads) {
  set_thread_count(4);
  trace::TraceSink sink;
  {
    trace::ScopedSink scoped(&sink);
    metrics::Counter& c = sink.metrics().counter("test.adds");
    parallel_for(0, 10000, 16, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        c.add(1);
      }
    });
  }
  EXPECT_EQ(sink.metrics().counter("test.adds").value(), 10000u);
}

TEST_F(TraceTest, HistogramMergesCountSumMinMaxAcrossPoolThreads) {
  set_thread_count(4);
  trace::TraceSink sink;
  {
    trace::ScopedSink scoped(&sink);
    metrics::Histogram& h = sink.metrics().histogram("test.obs");
    parallel_for(1, 1001, 8, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        h.observe(static_cast<double>(i));
      }
    });
  }
  const auto snap = sink.metrics().histogram("test.obs").snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.sum, 500500.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 1000u);
}

TEST_F(TraceTest, RegistryReturnsTheSameInstrumentForTheSameName) {
  trace::TraceSink sink;
  metrics::Counter& a = sink.metrics().counter("same");
  metrics::Counter& b = sink.metrics().counter("same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST_F(TraceTest, SeriesKeepsPointsInPushOrder) {
  trace::TraceSink sink;
  trace::ScopedSink scoped(&sink);
  metrics::Series* s = trace::series("test.series");
  ASSERT_NE(s, nullptr);
  trace::push_series(s, 1.0, 10.0);
  trace::push_series(s, 2.0, 20.0);
  trace::push_series(s, 3.0, 30.0);
  const auto points = s->points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].x, 1.0);
  EXPECT_EQ(points[2].y, 30.0);
  EXPECT_LE(points[0].t_us, points[2].t_us);
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

TEST_F(TraceTest, ChromeTraceExportIsValidJsonWithTheRecordedSpans) {
  trace::TraceSink sink;
  {
    trace::ScopedSink scoped(&sink);
    trace::Span outer("outer \"quoted\" name");
    trace::Span inner("inner");
    sink.metrics().counter("events").add(2);
    trace::push_series(trace::series("load"), 1.0, 0.5);
  }
  std::ostringstream os;
  sink.write_chrome_trace(os);
  const JsonValue root = parse_json(os.str());
  ASSERT_EQ(root.kind, JsonValue::Kind::Object);
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::Array);

  std::size_t complete = 0;
  std::size_t counters = 0;
  bool saw_quoted = false;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "X") {
      ++complete;
      ASSERT_NE(e.find("ts"), nullptr);
      ASSERT_NE(e.find("dur"), nullptr);
      if (e.find("name")->str == "outer \"quoted\" name") saw_quoted = true;
    } else if (ph->str == "C") {
      ++counters;
    }
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(counters, 1u);  // one point on one series
  EXPECT_TRUE(saw_quoted) << "string escaping must round-trip";
}

TEST_F(TraceTest, RunReportRoundTripsBuildInfoNotesAndMetrics) {
  trace::TraceSink sink;
  PhaseTimer timer;
  {
    trace::ScopedSink scoped(&sink);
    trace::StepScope scope(timer, "step3_propagation");
    sink.metrics().counter("work.items").add(7);
    sink.metrics().gauge("work.threads").set(4.0);
    sink.metrics().histogram("work.us").observe(123.0);
    trace::push_series(trace::series("work.delta"), 1.0, 0.25);
  }

  trace::RunReport report("test report");
  report.note("objects", std::int64_t{60});
  report.note("label", "alpha");
  report.note("exact", 0.125);
  report.note("flag", true);
  trace::RunReport::Run& run = report.add_run("main");
  run.note("accuracy", 0.75);
  run.capture(sink);
  run.capture(timer);

  std::ostringstream os;
  report.write(os);
  const JsonValue root = parse_json(os.str());

  ASSERT_EQ(root.find("report")->str, "test report");
  const JsonValue* build = root.find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->find("version")->str, build_info().version);
  EXPECT_EQ(build->find("git")->str, build_info().git_revision);
  EXPECT_FALSE(build->find("compiler")->str.empty());

  const JsonValue* notes = root.find("notes");
  ASSERT_NE(notes, nullptr);
  EXPECT_EQ(notes->find("objects")->number, 60.0);
  EXPECT_EQ(notes->find("label")->str, "alpha");
  EXPECT_EQ(notes->find("exact")->number, 0.125);
  EXPECT_EQ(notes->find("flag")->boolean, true);

  const JsonValue* runs = root.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array.size(), 1u);
  const JsonValue& main_run = runs->array[0];
  EXPECT_EQ(main_run.find("label")->str, "main");
  EXPECT_EQ(main_run.find("notes")->find("accuracy")->number, 0.75);
  EXPECT_EQ(main_run.find("counters")->find("work.items")->number, 7.0);
  EXPECT_EQ(main_run.find("gauges")->find("work.threads")->number, 4.0);
  const JsonValue* hist = main_run.find("histograms")->find("work.us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->number, 1.0);
  EXPECT_EQ(hist->find("min")->number, 123.0);
  const JsonValue* series = main_run.find("series")->find("work.delta");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->array.size(), 1u);
  EXPECT_EQ(series->array[0].array[0].number, 1.0);
  EXPECT_EQ(series->array[0].array[1].number, 0.25);
  const JsonValue* phases = main_run.find("phases_ms");
  ASSERT_NE(phases, nullptr);
  ASSERT_NE(phases->find("step3_propagation"), nullptr);
  const JsonValue* spans = main_run.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array.size(), 1u);
  EXPECT_EQ(spans->array[0].find("name")->str, "step3_propagation");
  EXPECT_EQ(spans->array[0].find("parent")->number, -1.0);
}

TEST_F(TraceTest, DoubleFormattingRoundTripsFullPrecision) {
  trace::TraceSink sink;
  {
    trace::ScopedSink scoped(&sink);
    trace::push_series(trace::series("precise"), 1.0,
                       0.1234567890123456789);
  }
  trace::RunReport report("precision");
  report.add_run("r").capture(sink);
  std::ostringstream os;
  report.write(os);
  const JsonValue root = parse_json(os.str());
  const JsonValue* series = root.find("runs")->array[0].find("series");
  const double got = series->find("precise")->array[0].array[1].number;
  EXPECT_EQ(got, 0.1234567890123456789);  // %.17g is lossless for doubles
}

// ---------------------------------------------------------------------
// Disabled-sink path
// ---------------------------------------------------------------------

TEST_F(TraceTest, DisabledSinkPrimitivesReturnNullAndDoNothing) {
  ASSERT_EQ(trace::sink(), nullptr);
  EXPECT_EQ(trace::counter("x"), nullptr);
  EXPECT_EQ(trace::gauge("x"), nullptr);
  EXPECT_EQ(trace::histogram("x"), nullptr);
  EXPECT_EQ(trace::series("x"), nullptr);
  trace::push_series(nullptr, 1.0, 2.0);  // must be a safe no-op
  trace::Span span("unrecorded");
  EXPECT_FALSE(span.active());
}

TEST_F(TraceTest, DisabledSinkPathAllocatesNothing) {
  ASSERT_EQ(trace::sink(), nullptr);
  // Warm up thread-local state outside the measured window.
  { trace::Span warmup("warmup"); }
  (void)trace::counter("warmup");

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 100; ++i) {
    trace::Span span("hot");
    span.set_attr("k", std::int64_t{1});
    span.set_attr("s", "value");
    (void)trace::counter("hot.counter");
    (void)trace::series("hot.series");
    trace::push_series(nullptr, 1.0, 2.0);
  }
  EXPECT_EQ(g_allocations.load(), before)
      << "tracing-off instrumentation must not allocate";
}

}  // namespace
}  // namespace crowdrank

// ---------------------------------------------------------------------
// Allocation counting: replace the global allocator with a counting
// malloc shim. Defined after all test code to keep the overrides obvious.
// ---------------------------------------------------------------------

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
