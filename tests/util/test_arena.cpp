// The per-job monotonic arena (util/arena.hpp): bump allocation, block
// retention across resets, oversize fallback, the outstanding-allocation
// safety refusal, and the thread-local current()/Scope binding that
// Matrix/SparseMatrix capture.
#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory_resource>
#include <vector>

#include "util/matrix.hpp"

namespace crowdrank {
namespace {

TEST(ArenaTest, BumpAllocationAndAlignment) {
  Arena arena(1 << 12);
  void* a = arena.allocate(24, 8);
  void* b = arena.allocate(1, 1);
  void* c = arena.allocate(32, 32);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 32, 0u);
  // All three came out of one block.
  EXPECT_EQ(arena.stats().system_allocs, 1u);
  EXPECT_EQ(arena.stats().allocs, 3u);
  EXPECT_EQ(arena.stats().outstanding, 3u);
  // Writes must not overlap: fill each region and check the first.
  std::memset(a, 0xAA, 24);
  std::memset(b, 0xBB, 1);
  std::memset(c, 0xCC, 32);
  EXPECT_EQ(static_cast<unsigned char*>(a)[23], 0xAA);
  arena.deallocate(a, 24, 8);
  arena.deallocate(b, 1, 1);
  arena.deallocate(c, 32, 32);
  EXPECT_EQ(arena.stats().outstanding, 0u);
}

TEST(ArenaTest, ResetRetainsBlocksAndReusesThem) {
  Arena arena(1 << 12);
  void* first = arena.allocate(256, 8);
  arena.deallocate(first, 256, 8);
  const std::uint64_t system_allocs_cold = arena.stats().system_allocs;
  EXPECT_TRUE(arena.reset());
  // Warm pass: same request pattern, zero new upstream blocks, and the
  // bump pointer hands back the same region.
  void* second = arena.allocate(256, 8);
  EXPECT_EQ(second, first);
  arena.deallocate(second, 256, 8);
  EXPECT_EQ(arena.stats().system_allocs, system_allocs_cold);
  EXPECT_TRUE(arena.reset());
  EXPECT_EQ(arena.stats().resets, 2u);
  EXPECT_GT(arena.stats().bytes_peak, 0u);
}

TEST(ArenaTest, OversizeRequestsFallBackAndAreReleasedOnReset) {
  Arena arena(1 << 10);  // 1 KiB blocks
  void* big = arena.allocate(1 << 16, 64);  // 64 KiB: can't fit a block
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 64, 0u);
  std::memset(big, 0x5A, 1 << 16);
  EXPECT_EQ(arena.stats().oversize_allocs, 1u);
  arena.deallocate(big, 1 << 16, 64);
  const std::uint64_t reserved_with_oversize = arena.stats().bytes_reserved;
  EXPECT_TRUE(arena.reset());
  // Oversize blocks are released by reset (only normal blocks persist).
  EXPECT_LT(arena.stats().bytes_reserved, reserved_with_oversize);
}

TEST(ArenaTest, ResetRefusesWhileAllocationsOutstanding) {
  Arena arena;
  void* p = arena.allocate(64, 8);
  EXPECT_FALSE(arena.reset());  // leak-through becomes a stat, not a UAF
  EXPECT_EQ(arena.stats().skipped_resets, 1u);
  arena.deallocate(p, 64, 8);
  EXPECT_TRUE(arena.reset());
  EXPECT_EQ(arena.stats().resets, 1u);
}

TEST(ArenaTest, CurrentDefaultsToNewDelete) {
  EXPECT_EQ(arena::current(), std::pmr::new_delete_resource());
}

TEST(ArenaTest, ScopeBindsAndRestores) {
  Arena arena;
  {
    arena::Scope scope(arena);
    EXPECT_EQ(arena::current(), &arena);
    {
      Arena inner;
      arena::Scope nested(inner);
      EXPECT_EQ(arena::current(), &inner);
    }
    EXPECT_EQ(arena::current(), &arena);
  }
  EXPECT_EQ(arena::current(), std::pmr::new_delete_resource());
}

TEST(ArenaTest, MatrixDrawsFromBoundArena) {
  Arena arena;
  {
    arena::Scope scope(arena);
    Matrix m(16, 16, 1.0);
    EXPECT_GT(arena.stats().allocs, 0u);
    EXPECT_GT(arena.stats().outstanding, 0u);
    // Element access works on arena storage like any other.
    m(3, 4) = 2.0;
    EXPECT_EQ(m(3, 4), 2.0);
  }
  // Matrix destroyed -> everything returned; the job-boundary reset works.
  EXPECT_EQ(arena.stats().outstanding, 0u);
  EXPECT_TRUE(arena.reset());
}

TEST(ArenaTest, CopyIntoDifferentResourceKeepsValues) {
  // Copy-construction captures the *current* binding, so a copy made
  // outside the Scope lives on the heap and survives the arena reset —
  // the pattern a job result must follow.
  Arena arena;
  Matrix escaped;
  {
    arena::Scope scope(arena);
    Matrix scratch(8, 8, 0.0);
    scratch(2, 2) = 42.0;
    arena::Scope heap(*std::pmr::new_delete_resource());
    escaped = Matrix(scratch);
  }
  ASSERT_TRUE(arena.reset());
  EXPECT_EQ(escaped(2, 2), 42.0);
}

TEST(ArenaTest, ManySmallAllocationsSpanBlocks) {
  Arena arena(1 << 10);
  std::vector<void*> ptrs;
  for (int i = 0; i < 64; ++i) {
    ptrs.push_back(arena.allocate(100, 8));  // ~6.4 KiB total, 1 KiB blocks
  }
  EXPECT_GT(arena.stats().system_allocs, 1u);
  for (void* p : ptrs) {
    arena.deallocate(p, 100, 8);
  }
  const std::uint64_t blocks = arena.stats().system_allocs;
  EXPECT_TRUE(arena.reset());
  // Second pass reuses every retained block: no new upstream traffic.
  for (int i = 0; i < 64; ++i) {
    arena.deallocate(arena.allocate(100, 8), 100, 8);
  }
  EXPECT_EQ(arena.stats().system_allocs, blocks);
}

}  // namespace
}  // namespace crowdrank
