// Unit tests for the CSR matrix behind sparse-first preference
// propagation. The load-bearing property is *bitwise* agreement with the
// dense kernels: the hybrid propagator switches representation mid-loop
// and relies on the switch being unobservable in the result.
#include "util/sparse_matrix.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/matrix.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

class SparseMatrixTest : public ::testing::Test {
 protected:
  void TearDown() override { set_thread_count(configured_thread_count()); }
};

/// Non-negative random matrix with the given fill — the shape of every
/// matrix the propagation loop touches (preference weights and their
/// products).
Matrix random_sparse(std::size_t n, double fill, Rng& rng) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(fill)) {
        m(i, j) = rng.uniform();
      }
    }
  }
  return m;
}

TEST_F(SparseMatrixTest, DenseRoundTripIsExact) {
  Rng rng(7);
  const Matrix dense = random_sparse(23, 0.2, rng);
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  EXPECT_EQ(sparse.rows(), dense.rows());
  EXPECT_EQ(sparse.cols(), dense.cols());
  EXPECT_EQ(sparse.to_dense(), dense);
}

TEST_F(SparseMatrixTest, NnzAndFillRatioCountStoredEntries) {
  Matrix dense(4, 5, 0.0);
  dense(0, 1) = 0.5;
  dense(2, 0) = 1.0;
  dense(3, 4) = 0.25;
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  EXPECT_EQ(sparse.nnz(), 3u);
  EXPECT_DOUBLE_EQ(sparse.fill_ratio(), 3.0 / 20.0);
  EXPECT_DOUBLE_EQ(SparseMatrix().fill_ratio(), 0.0);
}

TEST_F(SparseMatrixTest, FromCsrMatchesFromDense) {
  // Row 0: (1, 0.5) (3, 0.2); row 1: empty; row 2: (0, 1.0).
  const std::vector<std::size_t> row_ptr{0, 2, 2, 3};
  const std::vector<std::size_t> col_idx{1, 3, 0};
  const std::vector<double> values{0.5, 0.2, 1.0};
  const SparseMatrix sparse =
      SparseMatrix::from_csr(3, 4, row_ptr, col_idx, values);
  Matrix dense(3, 4, 0.0);
  dense(0, 1) = 0.5;
  dense(0, 3) = 0.2;
  dense(2, 0) = 1.0;
  EXPECT_EQ(sparse, SparseMatrix::from_dense(dense));
}

TEST_F(SparseMatrixTest, FromCsrRejectsMalformedShapes) {
  const std::vector<std::size_t> row_ptr{0, 1};
  const std::vector<std::size_t> col_idx{5};
  const std::vector<double> values{1.0};
  // Column index out of range.
  EXPECT_THROW(SparseMatrix::from_csr(1, 3, row_ptr, col_idx, values),
               Error);
  // row_ptr sized for the wrong row count.
  EXPECT_THROW(SparseMatrix::from_csr(2, 6, row_ptr, col_idx, values),
               Error);
}

TEST_F(SparseMatrixTest, MultiplyMatchesDenseBitwise) {
  Rng rng(21);
  for (const double fill : {0.02, 0.1, 0.4}) {
    const Matrix a = random_sparse(57, fill, rng);
    const Matrix b = random_sparse(57, fill, rng);
    const Matrix expected = Matrix::multiply(a, b);
    const SparseMatrix product = SparseMatrix::multiply(
        SparseMatrix::from_dense(a), SparseMatrix::from_dense(b));
    // EXPECT_EQ, not near: the kernels accumulate in the same order and the
    // operands are non-negative, so every bit must agree (see the header's
    // determinism contract).
    EXPECT_EQ(product.to_dense(), expected) << "fill = " << fill;
  }
}

TEST_F(SparseMatrixTest, MultiplyIsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(33);
  const Matrix a = random_sparse(130, 0.15, rng);
  const Matrix b = random_sparse(130, 0.15, rng);
  const SparseMatrix sa = SparseMatrix::from_dense(a);
  const SparseMatrix sb = SparseMatrix::from_dense(b);

  set_thread_count(1);
  const SparseMatrix serial = SparseMatrix::multiply(sa, sb);
  const Matrix dense_serial = Matrix::multiply(a, b);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    set_thread_count(threads);
    const SparseMatrix parallel = SparseMatrix::multiply(sa, sb);
    EXPECT_EQ(serial, parallel) << "threads = " << threads;
    EXPECT_EQ(parallel.to_dense(), dense_serial) << "threads = " << threads;
  }
}

TEST_F(SparseMatrixTest, FusedMultiplyAddMatchesDenseBitwise) {
  Rng rng(55);
  const Matrix a = random_sparse(41, 0.1, rng);
  const Matrix b = random_sparse(41, 0.1, rng);
  const Matrix c = random_sparse(41, 0.3, rng);
  const double scale = 0.37;
  const Matrix expected = Matrix::multiply_add_scaled(a, b, scale, c);
  const SparseMatrix fused = SparseMatrix::multiply_add_scaled(
      SparseMatrix::from_dense(a), SparseMatrix::from_dense(b), scale,
      SparseMatrix::from_dense(c));
  EXPECT_EQ(fused.to_dense(), expected);
}

TEST_F(SparseMatrixTest, MultiplyReportsUpdateFlops) {
  // Sparse regimes: exactly one multiply-add update per stored
  // (a_ik, b_kj) pair. Operands are kept under the dense-fallback fill
  // cutoff so the scatter path runs.
  Matrix a(6, 6, 0.0);
  a(0, 0) = 0.5;
  Matrix b(6, 6, 0.0);
  b(0, 0) = 0.25;
  b(0, 1) = 0.75;
  std::uint64_t flops = 0;
  const SparseMatrix product = SparseMatrix::multiply(
      SparseMatrix::from_dense(a), SparseMatrix::from_dense(b), &flops);
  EXPECT_EQ(flops, 4u);  // 2 updates * 2 flops each
  EXPECT_EQ(product.nnz(), 2u);
}

TEST_F(SparseMatrixTest, DenseFallbackReportsDenseFlops) {
  // Dense-ish small operands route through the dense kernel, whose
  // accounting is the dense upper bound 2 * n * k * m (the kernel still
  // skips zero lhs entries, but the figure reported is the bound).
  Matrix a(2, 2, 0.0);
  a(0, 0) = 0.5;
  Matrix b(2, 2, 0.0);
  b(0, 0) = 0.25;
  b(0, 1) = 0.75;
  std::uint64_t flops = 0;
  const SparseMatrix product = SparseMatrix::multiply(
      SparseMatrix::from_dense(a), SparseMatrix::from_dense(b), &flops);
  EXPECT_EQ(flops, 16u);  // 2 * 2 * 2 * 2
  EXPECT_EQ(product.nnz(), 2u);
  EXPECT_EQ(product.to_dense(), Matrix::multiply(a, b));
}

TEST_F(SparseMatrixTest, ScaleAndMaxValueMatchDense) {
  Rng rng(71);
  Matrix dense = random_sparse(29, 0.2, rng);
  SparseMatrix sparse = SparseMatrix::from_dense(dense);
  EXPECT_EQ(sparse.max_value(), dense.max_value());

  sparse *= 0.125;  // power of two: scaling is exact
  dense *= 0.125;
  EXPECT_EQ(sparse.to_dense(), dense);
  EXPECT_EQ(sparse.max_value(), dense.max_value());
}

TEST_F(SparseMatrixTest, EmptyAndEdgelessShapesBehave) {
  const SparseMatrix empty(3, 3);
  EXPECT_EQ(empty.nnz(), 0u);
  EXPECT_EQ(empty.to_dense(), Matrix(3, 3, 0.0));
  EXPECT_DOUBLE_EQ(empty.max_value(), 0.0);

  const SparseMatrix product = SparseMatrix::multiply(empty, empty);
  EXPECT_EQ(product.nnz(), 0u);
  EXPECT_EQ(product.rows(), 3u);
  EXPECT_EQ(product.cols(), 3u);
}

TEST_F(SparseMatrixTest, MultiplyRejectsMismatchedShapes) {
  const SparseMatrix a(2, 3);
  const SparseMatrix b(2, 2);
  EXPECT_THROW(SparseMatrix::multiply(a, b), Error);
  // Inner dimensions fine, but the addend is not shaped like the product.
  EXPECT_THROW(
      SparseMatrix::multiply_add_scaled(a, SparseMatrix(3, 2), 1.0,
                                        SparseMatrix(2, 3)),
      Error);
}

}  // namespace
}  // namespace crowdrank
