// Tests for the annotated synchronization wrappers (util/mutex.hpp).
//
// The wrappers forward to std::mutex / std::condition_variable, so these
// tests pin the wrapper-specific behavior: MutexLock's relock gap, the
// conditional destructor release, CondVar wakeups against a Mutex, and the
// timed waits' status mapping. The TSan preset runs this suite to witness
// the adopt/release dance inside CondVar::wait at runtime, complementing
// the compile-time checks of the thread-safety preset.
#include "util/mutex.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace crowdrank {
namespace {

TEST(MutexTest, LockUnlockTryLock) {
  Mutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());  // non-recursive: self-retry must fail
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexTest, MutexLockExcludesOtherThreads) {
  Mutex mu;
  int value = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++value;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(value, kThreads * kIters);
}

TEST(MutexTest, MutexLockRelockGap) {
  Mutex mu;
  {
    MutexLock lock(mu);
    lock.unlock();
    // The gap is real: another owner can take the mutex now.
    EXPECT_TRUE(mu.try_lock());
    mu.unlock();
    lock.lock();
    EXPECT_FALSE(mu.try_lock());  // held again
  }
  // Destructor released it even though the lock went through a gap.
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexTest, MutexLockDestructorAfterManualUnlock) {
  Mutex mu;
  {
    MutexLock lock(mu);
    lock.unlock();
  }  // destructor must not release again (held_ is false)
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(CondVarTest, NotifyWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) {
      cv.wait(mu);
    }
    observed = true;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, WaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto status = cv.wait_for(mu, std::chrono::milliseconds(1));
  EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(CondVarTest, WaitUntilPastDeadlineReturnsTimeout) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto status =
      cv.wait_until(mu, std::chrono::steady_clock::now() -
                            std::chrono::milliseconds(1));
  EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woke = 0;
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) {
        cv.wait(mu);
      }
      ++woke;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.notify_all();
  for (std::thread& t : waiters) {
    t.join();
  }
  EXPECT_EQ(woke, kWaiters);
}

TEST(CondVarTest, MutexHeldAgainAfterWaitReturns) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) {
      cv.wait(mu);
    }
    // If wait() failed to re-acquire, this try_lock would succeed and the
    // protocol would be broken.
    EXPECT_FALSE(mu.try_lock());
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
}

}  // namespace
}  // namespace crowdrank
