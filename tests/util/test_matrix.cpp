// Unit tests for the dense matrix (Step 3's propagation workhorse).
#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = rng.uniform();
    }
  }
  return m;
}

Matrix naive_multiply(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += a(i, k) * b(k, j);
      }
      out(i, j) = acc;
    }
  }
  return out;
}

TEST(Matrix, ConstructionAndFill) {
  Matrix m(3, 4, 2.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_FALSE(m.is_square());
  EXPECT_DOUBLE_EQ(m(2, 3), 2.5);
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  const Matrix id = Matrix::identity(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, CheckedAccessThrows) {
  const Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), Error);
  EXPECT_THROW(m.at(0, 2), Error);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(Matrix, RowViewsSeeStorage) {
  Matrix m(2, 3);
  m(1, 2) = 9.0;
  EXPECT_DOUBLE_EQ(m.row(1)[2], 9.0);
  m.row(0)[0] = 4.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 4.0);
#if CROWDRANK_DEBUG_CHECKS
  // row() is a hot-path accessor: its bounds check exists in debug builds
  // only (at() stays checked in every build).
  EXPECT_THROW(m.row(2), Error);
#endif
}

TEST(Matrix, AdditionAndScaling) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(1, 1), 6.0);
  const Matrix c = a + b;
  EXPECT_DOUBLE_EQ(c(0, 1), 8.0);
  Matrix wrong(3, 2);
  EXPECT_THROW(a += wrong, Error);
}

TEST(Matrix, MultiplyIdentityIsNoop) {
  Rng rng(1);
  const Matrix m = random_matrix(5, 5, rng);
  const Matrix out = Matrix::multiply(m, Matrix::identity(5));
  EXPECT_LT(Matrix::max_abs_diff(m, out), 1e-15);
}

TEST(Matrix, MultiplyMatchesNaiveSquare) {
  Rng rng(2);
  for (const std::size_t n : {1u, 2u, 7u, 33u, 70u, 129u}) {
    const Matrix a = random_matrix(n, n, rng);
    const Matrix b = random_matrix(n, n, rng);
    EXPECT_LT(Matrix::max_abs_diff(Matrix::multiply(a, b),
                                   naive_multiply(a, b)),
              1e-9)
        << "n=" << n;
  }
}

TEST(Matrix, MultiplyMatchesNaiveRectangular) {
  Rng rng(3);
  const Matrix a = random_matrix(13, 70, rng);
  const Matrix b = random_matrix(70, 29, rng);
  EXPECT_LT(
      Matrix::max_abs_diff(Matrix::multiply(a, b), naive_multiply(a, b)),
      1e-9);
}

TEST(Matrix, MultiplyRejectsShapeMismatch) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(Matrix::multiply(a, b), Error);
}

TEST(Matrix, PowerSumSinglePower) {
  Rng rng(4);
  const Matrix w = random_matrix(6, 6, rng);
  const Matrix w2 = Matrix::power_sum(w, 2, 2);
  EXPECT_LT(Matrix::max_abs_diff(w2, naive_multiply(w, w)), 1e-10);
}

TEST(Matrix, PowerSumAccumulates) {
  Rng rng(5);
  const Matrix w = random_matrix(5, 5, rng);
  const Matrix sum = Matrix::power_sum(w, 1, 3);
  Matrix expected = w;
  const Matrix w2 = naive_multiply(w, w);
  const Matrix w3 = naive_multiply(w2, w);
  expected += w2;
  expected += w3;
  EXPECT_LT(Matrix::max_abs_diff(sum, expected), 1e-9);
}

TEST(Matrix, PowerSumValidatesArguments) {
  const Matrix rect(2, 3);
  EXPECT_THROW(Matrix::power_sum(rect, 1, 2), Error);
  const Matrix sq(3, 3);
  EXPECT_THROW(Matrix::power_sum(sq, 0, 2), Error);
  EXPECT_THROW(Matrix::power_sum(sq, 3, 2), Error);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 1.0);
  b(1, 0) = -2.0;
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 3.0);
  const Matrix c(3, 3);
  EXPECT_THROW(Matrix::max_abs_diff(a, c), Error);
}

TEST(Matrix, SparseRowsSkippedCorrectly) {
  // The blocked kernel skips zero a(i,k); make sure that shortcut is sound.
  Matrix a(3, 3, 0.0);
  a(0, 1) = 2.0;
  Matrix b(3, 3, 0.0);
  b(1, 2) = 3.0;
  const Matrix out = Matrix::multiply(a, b);
  EXPECT_DOUBLE_EQ(out(0, 2), 6.0);
  double total = 0.0;
  for (const double v : out.data()) total += v;
  EXPECT_DOUBLE_EQ(total, 6.0);
}

}  // namespace
}  // namespace crowdrank
