// StableHash (util/hash.hpp): the content-addressing primitive under the
// artifact checksums and the result-cache keys. The tests pin the actual
// digest values — the hash is a persistence format, so any change to its
// output is a breaking format change and must fail here first.
#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace crowdrank {
namespace {

TEST(StableHash, EmptyInputDigestIsPinned) {
  // Murmur3 x64-128 of zero bytes with seed 0. Pinned forever: if this
  // moves, every artifact checksum and cache key on disk is invalidated.
  EXPECT_EQ(StableHash(0).digest().hex(), "00000000000000000000000000000000");
}

TEST(StableHash, KnownAnswerIsPinned) {
  // Golden value pinned at the format's introduction; guards byte order,
  // tail handling, and finalization across platforms and compilers.
  StableHash hash(0);
  hash.add_string("crowdrank");
  EXPECT_EQ(hash.digest().hex(), "cdcc0ac1eb9a8ebd908390a3c8ae1870");
}

TEST(StableHash, HexIs32LowercaseDigits) {
  StableHash hash(7);
  hash.add_u64(1234);
  const std::string hex = hash.digest().hex();
  ASSERT_EQ(hex.size(), 32u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
        << "unexpected hex character " << c;
  }
}

TEST(StableHash, StreamingMatchesOneShot) {
  // Chunking must not matter: the cache key is built field-by-field while
  // the artifact checksum hashes one contiguous buffer.
  const std::string bytes = "the quick brown fox jumps over the lazy dog";
  StableHash one_shot(42);
  one_shot.add_bytes(bytes.data(), bytes.size());
  for (std::size_t split = 1; split < bytes.size(); split += 7) {
    StableHash streamed(42);
    streamed.add_bytes(bytes.data(), split);
    streamed.add_bytes(bytes.data() + split, bytes.size() - split);
    EXPECT_EQ(streamed.digest(), one_shot.digest()) << "split " << split;
  }
}

TEST(StableHash, DigestDoesNotConsumeTheHasher) {
  StableHash hash(1);
  hash.add_u32(5);
  const HashDigest first = hash.digest();
  EXPECT_EQ(hash.digest(), first);  // digest() finalizes a copy
  hash.add_u32(6);
  EXPECT_NE(hash.digest(), first);
}

TEST(StableHash, SeedsSeparateKeySpaces) {
  StableHash a(0x43524146);  // "CRAF"
  StableHash b(0x43414348);  // "CACH"
  a.add_u64(99);
  b.add_u64(99);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(StableHash, EveryFieldPerturbsTheDigest) {
  const auto base = [] {
    StableHash h(3);
    h.add_u8(1);
    h.add_u32(2);
    h.add_u64(3);
    h.add_bool(true);
    h.add_double(0.5);
    h.add_string("x");
    return h.digest();
  }();
  {
    StableHash h(3);
    h.add_u8(2);  // changed
    h.add_u32(2);
    h.add_u64(3);
    h.add_bool(true);
    h.add_double(0.5);
    h.add_string("x");
    EXPECT_NE(h.digest(), base);
  }
  {
    StableHash h(3);
    h.add_u8(1);
    h.add_u32(2);
    h.add_u64(3);
    h.add_bool(false);  // changed
    h.add_double(0.5);
    h.add_string("x");
    EXPECT_NE(h.digest(), base);
  }
  {
    StableHash h(3);
    h.add_u8(1);
    h.add_u32(2);
    h.add_u64(3);
    h.add_bool(true);
    h.add_double(-0.5);  // changed
    h.add_string("x");
    EXPECT_NE(h.digest(), base);
  }
}

TEST(StableHash, DoubleHashesBitPattern) {
  // +0.0 and -0.0 compare equal but are different bit patterns — the hash
  // is over representation, so they must differ (and stay reproducible).
  StableHash pos(0);
  StableHash neg(0);
  pos.add_double(0.0);
  neg.add_double(-0.0);
  EXPECT_NE(pos.digest(), neg.digest());
}

TEST(StableHash, StringsAreLengthPrefixed) {
  // ("ab", "c") must not collide with ("a", "bc").
  StableHash left(0);
  left.add_string("ab");
  left.add_string("c");
  StableHash right(0);
  right.add_string("a");
  right.add_string("bc");
  EXPECT_NE(left.digest(), right.digest());
}

TEST(StableHash, Digest64IsLowWord) {
  StableHash hash(9);
  hash.add_u64(77);
  EXPECT_EQ(hash.digest64(), hash.digest().lo);
}

TEST(HashDigest, OrderingIsLexicographic) {
  const HashDigest a{1, 2};
  const HashDigest b{1, 3};
  const HashDigest c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (HashDigest{1, 2}));
}

}  // namespace
}  // namespace crowdrank
