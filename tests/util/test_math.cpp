// Unit tests for the special functions backing Eq. 5 and the worker model.
#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "util/error.hpp"

namespace crowdrank::math {
namespace {

TEST(GammaP, BoundaryValues) {
  EXPECT_DOUBLE_EQ(gamma_p(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_q(1.0, 0.0), 1.0);
}

TEST(GammaP, ComplementarySum) {
  for (const double a : {0.5, 1.0, 2.5, 10.0, 50.0}) {
    for (const double x : {0.1, 1.0, 5.0, 20.0, 100.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaP, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^{-x}.
  for (const double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(GammaP, RejectsBadArguments) {
  EXPECT_THROW(gamma_p(0.0, 1.0), Error);
  EXPECT_THROW(gamma_p(-1.0, 1.0), Error);
  EXPECT_THROW(gamma_p(1.0, -0.1), Error);
}

TEST(ChiSquared, CdfKnownValues) {
  // Median of chi2(k) is about k(1 - 2/(9k))^3.
  EXPECT_NEAR(chi_squared_cdf(0.454936, 1.0), 0.5, 1e-4);
  // chi2(2) is Exp(1/2): CDF(x) = 1 - e^{-x/2}.
  EXPECT_NEAR(chi_squared_cdf(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(chi_squared_cdf(5.991, 2.0), 0.95, 1e-3);
  EXPECT_NEAR(chi_squared_cdf(3.841, 1.0), 0.95, 1e-3);
  EXPECT_NEAR(chi_squared_cdf(18.307, 10.0), 0.95, 1e-3);
}

class ChiSquaredRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ChiSquaredRoundTrip, QuantileInvertsCdf) {
  const auto [p, k] = GetParam();
  const double x = chi_squared_quantile(p, k);
  EXPECT_GT(x, 0.0);
  EXPECT_NEAR(chi_squared_cdf(x, k), p, 1e-8) << "p=" << p << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    SweepPK, ChiSquaredRoundTrip,
    ::testing::Combine(::testing::Values(0.005, 0.025, 0.1, 0.5, 0.9, 0.975,
                                         0.995),
                       ::testing::Values(1.0, 2.0, 5.0, 10.0, 30.0, 100.0,
                                         500.0)));

TEST(ChiSquared, QuantileRejectsBadArguments) {
  EXPECT_THROW(chi_squared_quantile(0.0, 1.0), Error);
  EXPECT_THROW(chi_squared_quantile(1.0, 1.0), Error);
  EXPECT_THROW(chi_squared_quantile(0.5, 0.0), Error);
}

TEST(ChiSquared, QuantileMonotoneInP) {
  double prev = 0.0;
  for (const double p : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double x = chi_squared_quantile(p, 7.0);
    EXPECT_GT(x, prev);
    prev = x;
  }
}

TEST(Normal, CdfSymmetry) {
  for (const double x : {0.0, 0.5, 1.0, 2.0, 3.0}) {
    EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-14);
  }
  EXPECT_DOUBLE_EQ(normal_cdf(0.0), 0.5);
}

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(1.959964), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(1.644854), 0.95, 1e-6);
  EXPECT_NEAR(normal_cdf(-2.326348), 0.01, 1e-6);
}

class NormalQuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(NormalQuantileRoundTrip, QuantileInvertsCdf) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(SweepP, NormalQuantileRoundTrip,
                         ::testing::Values(1e-6, 0.001, 0.01, 0.025, 0.1,
                                           0.25, 0.5, 0.75, 0.9, 0.975,
                                           0.999, 1.0 - 1e-6));

TEST(Normal, QuantileRejectsBoundary) {
  EXPECT_THROW(normal_quantile(0.0), Error);
  EXPECT_THROW(normal_quantile(1.0), Error);
}

TEST(Normal, PdfPeakAndSymmetry) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_DOUBLE_EQ(normal_pdf(1.3), normal_pdf(-1.3));
}

TEST(ExpectedAbsNormal, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(expected_abs_normal(0.0), 0.0);
  EXPECT_NEAR(expected_abs_normal(1.0), std::sqrt(2.0 / M_PI), 1e-14);
  EXPECT_NEAR(expected_abs_normal(2.0), 2.0 * std::sqrt(2.0 / M_PI), 1e-14);
  EXPECT_THROW(expected_abs_normal(-0.1), Error);
}

TEST(Stats, MeanAndVariance) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_THROW(mean(std::vector<double>{}), Error);
  EXPECT_THROW(variance(std::vector<double>{}), Error);
}

TEST(Stats, KahanSumBeatsNaiveOnSmallTerms) {
  std::vector<double> v{1e16};
  for (int i = 0; i < 10; ++i) v.push_back(1.0);
  v.push_back(-1e16);
  EXPECT_DOUBLE_EQ(kahan_sum(v), 10.0);
}

TEST(Misc, Clamp01) {
  EXPECT_DOUBLE_EQ(clamp01(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(clamp01(0.5), 0.5);
  EXPECT_DOUBLE_EQ(clamp01(1.5), 1.0);
}

TEST(Misc, SafeLog) {
  EXPECT_DOUBLE_EQ(safe_log(1.0), 0.0);
  EXPECT_NEAR(safe_log(std::exp(-2.0)), -2.0, 1e-12);
  EXPECT_DOUBLE_EQ(safe_log(0.0), -745.0);
  EXPECT_DOUBLE_EQ(safe_log(-3.0), -745.0);
  EXPECT_DOUBLE_EQ(safe_log(0.5, -10.0), std::log(0.5));
}

TEST(Misc, LogFactorial) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-10);
}

TEST(Misc, PairCount) {
  EXPECT_EQ(pair_count(2), 1u);
  EXPECT_EQ(pair_count(10), 45u);
  EXPECT_EQ(pair_count(100), 4950u);
  EXPECT_EQ(pair_count(1000), 499500u);
}

}  // namespace
}  // namespace crowdrank::math
