// Unit tests for the streaming/bootstrap statistics.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace crowdrank {
namespace {

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, EmptyAccessorThrows) {
  const RunningStats s;
  EXPECT_THROW(s.mean(), Error);
  EXPECT_THROW(s.min(), Error);
  EXPECT_THROW(s.max(), Error);
}

TEST(RunningStats, NumericallyStableAtLargeOffsets) {
  // Naive sum-of-squares catastrophically cancels here; Welford must not.
  RunningStats s;
  const double offset = 1e9;
  for (const double v : {offset + 1.0, offset + 2.0, offset + 3.0}) {
    s.add(v);
  }
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Bootstrap, DegenerateSampleHasZeroWidth) {
  const std::vector<double> values(10, 0.42);
  Rng rng(1);
  const auto ci = bootstrap_ci(values, 200, 0.05, rng);
  EXPECT_DOUBLE_EQ(ci.mean, 0.42);
  EXPECT_DOUBLE_EQ(ci.lower, 0.42);
  EXPECT_DOUBLE_EQ(ci.upper, 0.42);
}

TEST(Bootstrap, IntervalBracketsTheMean) {
  Rng data_rng(2);
  std::vector<double> values;
  for (int i = 0; i < 30; ++i) {
    values.push_back(data_rng.normal(10.0, 2.0));
  }
  Rng rng(3);
  const auto ci = bootstrap_ci(values, 1000, 0.05, rng);
  EXPECT_LE(ci.lower, ci.mean);
  EXPECT_GE(ci.upper, ci.mean);
  // Should bracket the true mean most of the time; deterministic seed, so
  // just assert it does here.
  EXPECT_LT(ci.lower, 10.5);
  EXPECT_GT(ci.upper, 9.5);
}

TEST(Bootstrap, WiderSpreadWiderInterval) {
  Rng data_rng(4);
  std::vector<double> tight;
  std::vector<double> loose;
  for (int i = 0; i < 25; ++i) {
    tight.push_back(data_rng.normal(0.0, 0.1));
    loose.push_back(data_rng.normal(0.0, 5.0));
  }
  Rng rng(5);
  const auto ci_tight = bootstrap_ci(tight, 500, 0.05, rng);
  const auto ci_loose = bootstrap_ci(loose, 500, 0.05, rng);
  EXPECT_LT(ci_tight.upper - ci_tight.lower,
            ci_loose.upper - ci_loose.lower);
}

TEST(Bootstrap, Validates) {
  Rng rng(6);
  EXPECT_THROW(bootstrap_ci({}, 100, 0.05, rng), Error);
  const std::vector<double> v{1.0};
  EXPECT_THROW(bootstrap_ci(v, 5, 0.05, rng), Error);
  EXPECT_THROW(bootstrap_ci(v, 100, 0.0, rng), Error);
}

}  // namespace
}  // namespace crowdrank
