// Unit tests for error contracts, table rendering, timers, and logging.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace crowdrank {
namespace {

TEST(Error, ExpectsThrowsWithContext) {
  try {
    CR_EXPECTS(false, "the message");
    FAIL() << "CR_EXPECTS did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
}

TEST(Error, EnsuresThrows) {
  EXPECT_THROW(CR_ENSURES(1 == 2, "bad invariant"), Error);
}

TEST(Error, PassingChecksAreSilent) {
  EXPECT_NO_THROW(CR_EXPECTS(true, ""));
  EXPECT_NO_THROW(CR_ENSURES(true, ""));
}

TEST(Table, AlignedOutputHasHeaderRuleAndRows) {
  TableWriter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  std::ostringstream oss;
  t.print_aligned(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsWrongRowWidth) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  EXPECT_THROW(TableWriter({}), Error);
}

TEST(Table, CsvEscapesSpecialCells) {
  TableWriter t({"x"});
  t.add_row({"plain"});
  t.add_row({"with,comma"});
  t.add_row({"with\"quote"});
  std::ostringstream oss;
  t.print_csv(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("plain"), std::string::npos);
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(TableWriter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TableWriter::fmt_percent(0.892, 1), "89.2%");
  EXPECT_EQ(TableWriter::fmt_seconds(0.5, 1), "0.5s");
}

TEST(Timer, StopwatchAdvances) {
  Stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GT(w.elapsed_seconds(), 0.0);
  EXPECT_GT(w.elapsed_millis(), 0.0);
}

TEST(Timer, PhaseTimerAccumulatesInOrder) {
  PhaseTimer t;
  t.add("step1", 1.0);
  t.add("step2", 2.0);
  t.add("step1", 0.5);
  EXPECT_DOUBLE_EQ(t.seconds("step1"), 1.5);
  EXPECT_DOUBLE_EQ(t.seconds("step2"), 2.0);
  EXPECT_DOUBLE_EQ(t.seconds("missing"), 0.0);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 3.5);
  ASSERT_EQ(t.phases().size(), 2u);
  EXPECT_EQ(t.phases()[0], "step1");
  EXPECT_EQ(t.phases()[1], "step2");
  t.clear();
  EXPECT_TRUE(t.phases().empty());
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.0);
}

TEST(Timer, ScopedPhaseRecordsOnExit) {
  PhaseTimer t;
  {
    ScopedPhase p(t, "scope");
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  }
  EXPECT_GT(t.seconds("scope"), 0.0);
}

TEST(Logging, LevelGating) {
  Logger& logger = Logger::instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::Warn);
  EXPECT_FALSE(logger.enabled(LogLevel::Debug));
  EXPECT_FALSE(logger.enabled(LogLevel::Info));
  EXPECT_TRUE(logger.enabled(LogLevel::Warn));
  EXPECT_TRUE(logger.enabled(LogLevel::Error));
  logger.set_level(LogLevel::Off);
  EXPECT_FALSE(logger.enabled(LogLevel::Error));
  logger.set_level(saved);
}

TEST(Logging, StreamBuilderDoesNotThrow) {
  Logger& logger = Logger::instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::Off);
  EXPECT_NO_THROW(log_info() << "value: " << 42);
  logger.set_level(saved);
}

}  // namespace
}  // namespace crowdrank
