// Equivalence tests: the literal materialized-lists TAPS (§V-D1 verbatim)
// against the production lazy TAPS and Held-Karp.
#include "core/taps_reference.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/hamiltonian.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

Matrix random_closure(std::size_t n, Rng& rng) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double w = rng.uniform(0.05, 0.95);
      m(i, j) = w;
      m(j, i) = 1.0 - w;
    }
  }
  return m;
}

TEST(TapsReference, MatchesLazyTapsOnRandomClosures) {
  Rng rng(41);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 4 + trial % 4;  // 4..7
    const Matrix m = random_closure(n, rng);
    const TapsReferenceResult ref = taps_reference_search(m);
    const TapsResult lazy = taps_search(m);
    EXPECT_NEAR(ref.log_probability, lazy.log_probability, 1e-9)
        << "trial " << trial;
    ASSERT_FALSE(ref.best_paths.empty());
    // Same optimum achieved by every returned path of both.
    for (const Path& p : ref.best_paths) {
      EXPECT_NEAR(std::log(path_probability(m, p)), ref.log_probability,
                  1e-9);
    }
  }
}

TEST(TapsReference, MatchesHeldKarp) {
  Rng rng(42);
  for (int trial = 0; trial < 15; ++trial) {
    const Matrix m = random_closure(6, rng);
    const auto hk = max_probability_hamiltonian_path(m);
    ASSERT_TRUE(hk.has_value());
    const TapsReferenceResult ref = taps_reference_search(m);
    EXPECT_NEAR(ref.log_probability, -path_log_cost(m, *hk), 1e-9);
  }
}

TEST(TapsReference, EarlyTerminationOnPeakedInstances) {
  // A dominant chain: the threshold should fire long before row n!.
  Matrix m(6, 6, 0.0);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      if (i != j) m(i, j) = 0.05;
    }
  }
  for (std::size_t i = 0; i + 1 < 6; ++i) {
    m(i, i + 1) = 0.95;
    m(i + 1, i) = 0.05;
  }
  const TapsReferenceResult ref = taps_reference_search(m);
  EXPECT_EQ(ref.best_paths.front(), (Path{0, 1, 2, 3, 4, 5}));
  EXPECT_LT(ref.sorted_access_depth, 720u);  // 6! rows available
}

TEST(TapsReference, CollectsTies) {
  Matrix m(3, 3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) m(i, j) = 0.5;
    }
  }
  const TapsReferenceResult ref = taps_reference_search(m);
  EXPECT_EQ(ref.best_paths.size(), 6u);
  EXPECT_NEAR(ref.probability, 0.25, 1e-12);
}

TEST(TapsReference, Validates) {
  Matrix big(8, 8, 0.5);
  EXPECT_THROW(taps_reference_search(big), Error);
  Matrix incomplete(4, 4, 0.0);
  incomplete(0, 1) = 0.5;
  EXPECT_THROW(taps_reference_search(incomplete), Error);
}

}  // namespace
}  // namespace crowdrank
