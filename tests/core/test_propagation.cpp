// Unit tests for Step 3 — indirect preference propagation (paper §V-C).
#include "core/propagation.hpp"

#include <gtest/gtest.h>

#include "graph/hamiltonian.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

PreferenceGraph smoothed_chain(std::size_t n, double forward = 0.9) {
  PreferenceGraph g(n);
  for (VertexId i = 0; i + 1 < n; ++i) {
    g.set_weight(i, i + 1, forward);
    g.set_weight(i + 1, i, 1.0 - forward);
  }
  return g;
}

TEST(Propagation, ClosureIsCompleteAndNormalized) {
  const auto g = smoothed_chain(6);
  PropagationStats stats;
  const Matrix closure = propagate_preferences(g, {}, &stats);
  EXPECT_TRUE(stats.complete);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(closure(i, i), 0.0);
    for (std::size_t j = 0; j < 6; ++j) {
      if (i == j) continue;
      EXPECT_GT(closure(i, j), 0.0);
      EXPECT_LT(closure(i, j), 1.0);
      EXPECT_NEAR(closure(i, j) + closure(j, i), 1.0, 1e-12);
    }
  }
}

TEST(Propagation, TransitivityPointsTheRightWay) {
  // Chain 0 -> 1 -> 2 -> 3 with strong forward weights: the inferred
  // (0, 2), (0, 3), (1, 3) preferences must also point forward.
  const auto g = smoothed_chain(4, 0.95);
  const Matrix closure = propagate_preferences(g, {}, nullptr);
  EXPECT_GT(closure(0, 2), 0.5);
  EXPECT_GT(closure(0, 3), 0.5);
  EXPECT_GT(closure(1, 3), 0.5);
}

TEST(Propagation, AlphaOneIsDirectOnly) {
  const auto g = smoothed_chain(4);
  PropagationConfig config;
  config.alpha = 1.0;
  PropagationStats stats;
  const Matrix closure = propagate_preferences(g, config, &stats);
  // Direct edges keep their (normalized) direct weights.
  EXPECT_NEAR(closure(0, 1), 0.9, 1e-12);
  // Pairs without direct edges had zero evidence -> defaulted to 0.5.
  EXPECT_DOUBLE_EQ(closure(0, 2), 0.5);
  EXPECT_GT(stats.pairs_without_evidence, 0u);
}

TEST(Propagation, AlphaZeroIsIndirectOnly) {
  const auto g = smoothed_chain(4, 0.95);
  PropagationConfig config;
  config.alpha = 0.0;
  const Matrix closure = propagate_preferences(g, config, nullptr);
  // (0,2) only has indirect evidence; with alpha = 0 it is used alone and
  // still points forward.
  EXPECT_GT(closure(0, 2), 0.5);
}

TEST(Propagation, ExactAndWalkModesAgreeOnShortHorizon) {
  // With max_length = 2 there are no repeated-vertex walks between
  // distinct endpoints, so the two modes coincide exactly.
  Rng rng(3);
  PreferenceGraph g(5);
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = 0; j < 5; ++j) {
      if (i != j && rng.bernoulli(0.5)) {
        g.set_weight(i, j, rng.uniform(0.1, 0.9));
      }
    }
  }
  PropagationConfig walk;
  walk.max_length = 2;
  PropagationConfig exact;
  exact.max_length = 2;
  exact.mode = PropagationMode::ExactPaths;
  const Matrix mw = propagate_preferences(g, walk, nullptr);
  const Matrix me = propagate_preferences(g, exact, nullptr);
  EXPECT_LT(Matrix::max_abs_diff(mw, me), 1e-12);
}

TEST(Propagation, LongerHorizonFillsMorePairs) {
  const auto g = smoothed_chain(8);
  PropagationConfig short_cfg;
  short_cfg.max_length = 2;
  PropagationConfig long_cfg;
  long_cfg.max_length = 7;
  PropagationStats s_short;
  PropagationStats s_long;
  propagate_preferences(g, short_cfg, &s_short);
  propagate_preferences(g, long_cfg, &s_long);
  EXPECT_GT(s_short.pairs_without_evidence, s_long.pairs_without_evidence);
  EXPECT_EQ(s_long.pairs_without_evidence, 0u);
}

TEST(Propagation, ClosureAlwaysHasHamiltonianPath) {
  // Thm 5.1: the closure is complete, hence Hamiltonian.
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    PreferenceGraph g(7);
    // Random strongly-connected-ish smoothed graph: bidirectional chain
    // plus random extras.
    for (VertexId i = 0; i + 1 < 7; ++i) {
      const double w = rng.uniform(0.55, 0.95);
      g.set_weight(i, i + 1, w);
      g.set_weight(i + 1, i, 1.0 - w);
    }
    const Matrix closure = propagate_preferences(g, {}, nullptr);
    const PreferenceGraph cg = PreferenceGraph::from_matrix(closure);
    EXPECT_TRUE(cg.is_complete());
    EXPECT_TRUE(has_hamiltonian_path(cg)) << "trial " << trial;
  }
}

TEST(Propagation, OneSidedEvidenceClampedByFloor) {
  // Only a forward edge (no reverse, no cycle): after normalization the
  // reverse weight would be exactly 0; the floor keeps it positive.
  PreferenceGraph g(3);
  g.set_weight(0, 1, 1.0);  // deliberately unsmoothed
  PropagationConfig config;
  const Matrix closure = propagate_preferences(g, config, nullptr);
  EXPECT_DOUBLE_EQ(closure(1, 0), config.completeness_floor);
  EXPECT_DOUBLE_EQ(closure(0, 1), 1.0 - config.completeness_floor);
}

TEST(Propagation, ValidatesConfig) {
  const auto g = smoothed_chain(3);
  PropagationConfig bad;
  bad.alpha = 1.5;
  EXPECT_THROW(propagate_preferences(g, bad, nullptr), Error);
  bad = {};
  bad.max_length = 1;
  EXPECT_THROW(propagate_preferences(g, bad, nullptr), Error);
  bad = {};
  bad.completeness_floor = 0.0;
  EXPECT_THROW(propagate_preferences(g, bad, nullptr), Error);
}

}  // namespace
}  // namespace crowdrank
