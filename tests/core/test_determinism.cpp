// Determinism tests for the parallel engine: the whole inference pipeline
// and its parallel kernels must produce bitwise-identical results at one
// thread and at many. These are the tests the TSan preset runs (see
// CMakePresets.json) — they exercise every parallel region in the hot path.
#include <gtest/gtest.h>

#include <vector>

#include "core/pipeline.hpp"
#include "core/saps.hpp"
#include "core/truth_discovery.hpp"
#include "crowdrank.hpp"
#include "util/matrix.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/trace.hpp"

namespace crowdrank {
namespace {

class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_thread_count(configured_thread_count());
    simd::reset_backend();
  }
};

Matrix random_square(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.3)) {
        m(i, j) = rng.uniform();
      }
    }
  }
  return m;
}

TEST_F(DeterminismTest, MatrixMultiplyIsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(7);
  const Matrix a = random_square(130, rng);
  const Matrix b = random_square(130, rng);

  set_thread_count(1);
  const Matrix serial = Matrix::multiply(a, b);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    set_thread_count(threads);
    const Matrix parallel = Matrix::multiply(a, b);
    EXPECT_EQ(serial, parallel) << "threads = " << threads;
  }
}

TEST_F(DeterminismTest, PowerSumIsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(11);
  const Matrix w = random_square(90, rng);

  set_thread_count(1);
  const Matrix serial = Matrix::power_sum(w, 2, 5);
  set_thread_count(4);
  const Matrix parallel = Matrix::power_sum(w, 2, 5);
  EXPECT_EQ(serial, parallel);
}

TEST_F(DeterminismTest,
       SparsePropagationIsBitwiseIdenticalAcrossThreadCounts) {
  // The sparse-first hybrid adds two parallel kernels to the hot path
  // (Gustavson CSR x CSR and its fused carry variant) plus a mid-loop
  // representation handoff; the closure must not depend on the thread
  // count at any fill threshold.
  Rng rng(29);
  PreferenceGraph g(60);
  for (VertexId i = 0; i + 1 < 60; ++i) {
    g.set_weight(i, i + 1, 0.9);
    g.set_weight(i + 1, i, 0.1);
    // A few long-range chords so the fill grows unevenly across rows.
    if (rng.bernoulli(0.2)) {
      const auto j = static_cast<VertexId>(rng.uniform_int(0, 59));
      if (j != i && !g.has_edge(i, j)) {
        g.set_weight(i, j, rng.uniform(0.3, 0.7));
      }
    }
  }
  PropagationConfig config;
  config.mode = PropagationMode::SpectralLimit;
  for (const double threshold : {0.15, 1.0}) {
    config.fill_threshold = threshold;
    set_thread_count(1);
    PropagationStats serial_stats;
    const Matrix serial = propagate_preferences(g, config, &serial_stats);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
      set_thread_count(threads);
      PropagationStats stats;
      const Matrix parallel = propagate_preferences(g, config, &stats);
      EXPECT_EQ(serial, parallel)
          << "threads = " << threads << ", threshold = " << threshold;
      EXPECT_EQ(stats.densify_step, serial_stats.densify_step);
      EXPECT_EQ(stats.sparse_flops, serial_stats.sparse_flops);
    }
  }
}

TEST_F(DeterminismTest, SapsIsBitwiseIdenticalAcrossThreadCounts) {
  // The parallel-restart SAPS kernel: restart chains fan out across the
  // pool with per-restart Rng streams derived from (seed, restart index),
  // and the winner is a deterministic min-reduction — so the search output
  // must be bitwise-identical at 1 vs N threads, for both the configurable
  // restart count and paper_mode's full per-vertex sweep.
  Rng setup(19);
  Matrix closure(60, 60, 0.0);
  for (std::size_t i = 0; i < 60; ++i) {
    for (std::size_t j = i + 1; j < 60; ++j) {
      const double w = setup.uniform(0.05, 0.95);
      closure(i, j) = w;
      closure(j, i) = 1.0 - w;
    }
  }

  for (const bool paper_mode : {false, true}) {
    SapsConfig config;
    config.iterations = paper_mode ? 60 : 400;
    config.restarts = 6;
    config.paper_mode = paper_mode;

    set_thread_count(1);
    Rng serial_rng(77);
    const SapsResult serial = saps_search(closure, config, serial_rng);

    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
      set_thread_count(threads);
      Rng parallel_rng(77);
      const SapsResult parallel = saps_search(closure, config, parallel_rng);
      EXPECT_EQ(serial.best_path, parallel.best_path)
          << "threads = " << threads << ", paper_mode = " << paper_mode;
      EXPECT_EQ(serial.log_cost, parallel.log_cost);  // bitwise
      EXPECT_EQ(serial.moves_proposed, parallel.moves_proposed);
      EXPECT_EQ(serial.moves_accepted, parallel.moves_accepted);
      EXPECT_EQ(serial.restarts_run, parallel.restarts_run);

      // And repeated runs with the same seed at the same width agree too.
      Rng repeat_rng(77);
      const SapsResult repeat = saps_search(closure, config, repeat_rng);
      EXPECT_EQ(parallel.best_path, repeat.best_path);
      EXPECT_EQ(parallel.log_cost, repeat.log_cost);
    }
  }
}

TEST_F(DeterminismTest, TruthDiscoveryIsBitwiseIdenticalAcrossThreadCounts) {
  // A synthetic batch with enough tasks/workers to span several chunks.
  VoteBatch votes;
  Rng rng(23);
  const std::size_t n = 40;
  const std::size_t workers = 24;
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      if (!rng.bernoulli(0.2)) continue;
      for (int rep = 0; rep < 3; ++rep) {
        Vote v;
        v.i = i;
        v.j = j;
        v.worker = static_cast<WorkerId>(rng.uniform_index(workers));
        v.prefers_i = rng.bernoulli(0.7);
        votes.push_back(v);
      }
    }
  }

  set_thread_count(1);
  const TruthDiscoveryResult serial =
      discover_truth(votes, n, workers, TruthDiscoveryConfig{});
  set_thread_count(4);
  const TruthDiscoveryResult parallel =
      discover_truth(votes, n, workers, TruthDiscoveryConfig{});

  ASSERT_EQ(serial.truths.size(), parallel.truths.size());
  for (std::size_t t = 0; t < serial.truths.size(); ++t) {
    EXPECT_EQ(serial.truths[t].task, parallel.truths[t].task);
    EXPECT_EQ(serial.truths[t].x, parallel.truths[t].x);  // bitwise
  }
  EXPECT_EQ(serial.worker_quality, parallel.worker_quality);
  EXPECT_EQ(serial.worker_weight, parallel.worker_weight);
  EXPECT_EQ(serial.iterations, parallel.iterations);
}

TEST_F(DeterminismTest, PipelineOutputIsIdenticalAcrossThreadCounts) {
  ExperimentConfig config;
  config.object_count = 60;
  config.selection_ratio = 0.15;
  config.worker_pool_size = 12;
  config.workers_per_task = 3;
  config.seed = 1234;

  set_thread_count(1);
  const ExperimentResult serial = run_experiment(config);
  set_thread_count(4);
  const ExperimentResult parallel = run_experiment(config);

  // Bitwise-identical Step 3 closure, identical final ranking and score.
  EXPECT_EQ(serial.inference.closure, parallel.inference.closure);
  EXPECT_EQ(serial.inference.ranking, parallel.inference.ranking);
  EXPECT_EQ(serial.inference.log_probability,
            parallel.inference.log_probability);
  EXPECT_EQ(serial.accuracy, parallel.accuracy);
  EXPECT_EQ(serial.inference.step3.pairs_without_evidence,
            parallel.inference.step3.pairs_without_evidence);
}

TEST_F(DeterminismTest, PipelineOutputIsIdenticalAcrossSimdBackends) {
  // The AVX2 kernels (util/simd.hpp) must be bitwise-identical to the
  // scalar reference end to end: same closure bits, same ranking, same
  // log-probability, whichever backend the dispatch lands on. Skipped
  // (scalar vs scalar) on hosts without AVX2.
  if (!simd::avx2_supported()) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  ExperimentConfig config;
  config.object_count = 60;
  config.selection_ratio = 0.15;
  config.worker_pool_size = 12;
  config.workers_per_task = 3;
  config.seed = 1234;

  ASSERT_TRUE(simd::set_backend(simd::Backend::Scalar));
  const ExperimentResult scalar = run_experiment(config);
  ASSERT_TRUE(simd::set_backend(simd::Backend::Avx2));
  const ExperimentResult avx2 = run_experiment(config);
  simd::reset_backend();

  EXPECT_EQ(scalar.inference.closure, avx2.inference.closure);
  EXPECT_EQ(scalar.inference.ranking, avx2.inference.ranking);
  EXPECT_EQ(scalar.inference.log_probability,
            avx2.inference.log_probability);
  EXPECT_EQ(scalar.accuracy, avx2.accuracy);
}

TEST_F(DeterminismTest, TracingNeverPerturbsPipelineResults) {
  // The observability layer must be observe-only: running with a sink
  // attached has to produce bitwise-identical results to running without,
  // at one thread and at several. Instrumentation that consumed RNG or
  // reordered work would fail this.
  ExperimentConfig config;
  config.object_count = 50;
  config.selection_ratio = 0.15;
  config.worker_pool_size = 12;
  config.workers_per_task = 3;
  config.seed = 4321;

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_thread_count(threads);

    config.inference.trace = nullptr;
    const ExperimentResult plain = run_experiment(config);

    trace::TraceSink sink;
    config.inference.trace = &sink;
    const ExperimentResult traced = run_experiment(config);
    config.inference.trace = nullptr;

    EXPECT_EQ(plain.inference.closure, traced.inference.closure)
        << "threads = " << threads;
    EXPECT_EQ(plain.inference.ranking, traced.inference.ranking)
        << "threads = " << threads;
    EXPECT_EQ(plain.inference.log_probability,
              traced.inference.log_probability)
        << "threads = " << threads;
    EXPECT_EQ(plain.accuracy, traced.accuracy) << "threads = " << threads;

    // And the traced run actually recorded the pipeline: the four step
    // spans under one root, plus the convergence series.
    const auto spans = sink.spans();
    ASSERT_GE(spans.size(), 5u) << "threads = " << threads;
    EXPECT_EQ(spans[0].name, "infer");
    EXPECT_EQ(spans[1].name, "step1_truth_discovery");
    EXPECT_EQ(spans[1].parent, 0u);
    EXPECT_GT(sink.metrics().counter("truth_discovery.iterations").value(),
              0u);
  }
}

TEST_F(DeterminismTest, ApiFacadeMatchesEngineAcrossThreadCounts) {
  // The crowdrank::api facade must be a pure repackaging: with repair off
  // it reproduces the engine's output bit for bit, and with repair on a
  // clean batch it still does (hardening leaves clean input untouched) —
  // at one kernel thread and at several.
  VoteBatch votes;
  const std::size_t n = 12;
  for (WorkerId w = 0; w < 3; ++w) {
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = i + 1; j < n; ++j) {
        votes.push_back(Vote{w, i, j, true});
      }
    }
  }

  api::Request request;
  request.votes = votes;
  request.object_count = n;
  request.worker_count = 3;
  request.seed = 99;

  set_thread_count(1);
  Rng engine_rng(99);
  const InferenceResult direct =
      InferenceEngine{}.infer(votes, n, 3, engine_rng);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_thread_count(threads);
    for (const bool repair : {false, true}) {
      request.repair = repair;
      const api::Response response = api::rank(request);
      ASSERT_TRUE(response.ok())
          << "threads = " << threads << ", repair = " << repair
          << ", reason: " << response.reason;
      EXPECT_EQ(response.outcome, service::JobOutcome::Completed);
      EXPECT_EQ(response.ranking.order,
                std::vector<VertexId>(direct.ranking.order().begin(),
                                      direct.ranking.order().end()))
          << "threads = " << threads << ", repair = " << repair;
      EXPECT_EQ(response.log_probability, direct.log_probability);
    }
  }
}

TEST_F(DeterminismTest, ServiceResultsAreIdenticalAcrossKernelThreadCounts) {
  // Service executors force kernel regions inline (InlineRegion), so the
  // configured pool width must not leak into job content either.
  VoteBatch votes;
  const std::size_t n = 10;
  for (WorkerId w = 0; w < 3; ++w) {
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = i + 1; j < n; ++j) {
        votes.push_back(Vote{w, i, j, true});
      }
    }
  }
  const auto run_once = [&] {
    service::ServiceConfig config;
    config.worker_count = 2;
    service::RankingService svc(config);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      service::RankingJob job;
      job.votes = votes;
      job.object_count = n;
      job.seed = seed;
      svc.submit(std::move(job));
    }
    return svc.drain();
  };

  set_thread_count(1);
  const auto narrow = run_once();
  set_thread_count(4);
  const auto wide = run_once();
  ASSERT_EQ(narrow.size(), wide.size());
  for (std::size_t k = 0; k < narrow.size(); ++k) {
    EXPECT_EQ(narrow[k].outcome, wide[k].outcome);
    EXPECT_EQ(narrow[k].ranking.order, wide[k].ranking.order);
    EXPECT_EQ(narrow[k].log_probability, wide[k].log_probability);
  }
}

TEST_F(DeterminismTest, CacheHitIsBitwiseIdenticalToColdRecomputation) {
  // The result cache's whole premise: a warm hit returns exactly what a
  // cold recomputation would produce — at any kernel thread count. Messy
  // votes exercise the hardening path so the cached deliverable covers
  // repair accounting too.
  VoteBatch votes;
  const std::size_t n = 9;
  for (WorkerId w = 0; w < 3; ++w) {
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = i + 1; j < n; ++j) {
        votes.push_back(Vote{w, i, j, (i + j + w) % 3 != 0});
      }
    }
  }
  votes.push_back(Vote{0, 2, 2, true});   // self vote: hardening drops it
  votes.push_back(Vote{1, 0, 50, true});  // out of range: dropped too

  service::ResultCache cache;
  api::Request request;
  request.votes = votes;
  request.object_count = n;
  request.seed = 5;
  request.cache = &cache;

  set_thread_count(1);
  const api::Response cold = api::rank(request);
  ASSERT_TRUE(cold.ok()) << cold.reason;
  ASSERT_FALSE(cold.served_from_cache);
  ASSERT_FALSE(cold.artifact_key.empty());
  ASSERT_TRUE(cold.hardening.repaired());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_thread_count(threads);
    const api::Response warm = api::rank(request);
    ASSERT_TRUE(warm.served_from_cache) << "threads = " << threads;
    EXPECT_EQ(warm.outcome, cold.outcome);
    EXPECT_EQ(warm.stage, cold.stage);
    EXPECT_EQ(warm.ranking, cold.ranking);
    EXPECT_EQ(warm.hardening, cold.hardening);
    EXPECT_EQ(warm.log_probability, cold.log_probability);
    EXPECT_EQ(warm.artifact_key, cold.artifact_key);
    // The engine never ran: a hit carries the deliverable only.
    EXPECT_FALSE(warm.inference.has_value());
  }

  // Bypass ignores the cache and recomputes — and lands on the same bits,
  // which is the other direction of the identity.
  request.cache_control = service::CacheControl::Bypass;
  const api::Response bypass = api::rank(request);
  ASSERT_TRUE(bypass.ok()) << bypass.reason;
  EXPECT_FALSE(bypass.served_from_cache);
  EXPECT_EQ(bypass.ranking, cold.ranking);
  EXPECT_EQ(bypass.log_probability, cold.log_probability);
}

TEST_F(DeterminismTest, ServiceWarmResubmissionSkipsInferEntirely) {
  // Warm replays poison the infer stage with an injected fault: if the
  // pipeline were entered at all, every job would Fail at TruthDiscovery.
  // Settling bitwise-identical to the cold batch proves a hit short-
  // circuits validate→harden→infer, not just that it matches.
  VoteBatch votes;
  const std::size_t n = 10;
  for (WorkerId w = 0; w < 3; ++w) {
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = i + 1; j < n; ++j) {
        votes.push_back(Vote{w, i, j, true});
      }
    }
  }
  service::ResultCache cache;
  const auto run_batch = [&](std::size_t executors, bool poison_infer) {
    service::ServiceConfig config;
    config.worker_count = executors;
    config.cache = &cache;
    service::RankingService svc(config);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      service::RankingJob job;
      job.votes = votes;
      job.object_count = n;
      job.seed = seed;
      if (poison_infer) {
        job.fault.fail_before = PipelineStage::TruthDiscovery;
      }
      svc.submit(std::move(job));
    }
    return svc.drain();
  };

  set_thread_count(1);
  const auto cold = run_batch(1, /*poison_infer=*/false);
  for (const auto& result : cold) {
    ASSERT_EQ(result.outcome, service::JobOutcome::Completed)
        << result.reason;
    ASSERT_FALSE(result.served_from_cache);
    ASSERT_FALSE(result.artifact_key.empty());
  }

  for (const std::size_t executors : {std::size_t{1}, std::size_t{4}}) {
    const auto warm = run_batch(executors, /*poison_infer=*/true);
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t k = 0; k < cold.size(); ++k) {
      EXPECT_TRUE(warm[k].served_from_cache)
          << "executors = " << executors << ", job " << k;
      EXPECT_EQ(warm[k].outcome, cold[k].outcome);
      EXPECT_EQ(warm[k].ranking, cold[k].ranking);
      EXPECT_EQ(warm[k].hardening, cold[k].hardening);
      EXPECT_EQ(warm[k].log_probability, cold[k].log_probability);
      EXPECT_EQ(warm[k].artifact_key, cold[k].artifact_key);
    }
  }

  // Control: against an empty cache the same poisoned job really does
  // fail — the warm passes above were cache hits, not fault-plan luck.
  service::ResultCache empty_cache;
  service::ServiceConfig config;
  config.worker_count = 1;
  config.cache = &empty_cache;
  service::RankingService svc(config);
  service::RankingJob poisoned;
  poisoned.votes = votes;
  poisoned.object_count = n;
  poisoned.seed = 1;
  poisoned.fault.fail_before = PipelineStage::TruthDiscovery;
  svc.submit(std::move(poisoned));
  const auto failed = svc.drain();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0].outcome, service::JobOutcome::Failed);
  EXPECT_FALSE(failed[0].served_from_cache);
}

}  // namespace
}  // namespace crowdrank
