// Unit tests for Step 2 — preference smoothing (paper §V-B).
#include "core/smoothing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace crowdrank {
namespace {

/// Builds a Step-1 result + graph for a chain of unanimous tasks plus one
/// contested task, with chosen worker qualities.
struct Fixture {
  TruthDiscoveryResult step1;
  PreferenceGraph graph;
  std::vector<std::vector<WorkerId>> task_workers;

  explicit Fixture(std::vector<double> qualities) : graph(4) {
    step1.worker_quality = std::move(qualities);
    // Tasks: (0,1) unanimous forward, (1,2) unanimous backward,
    // (2,3) contested 0.7/0.3.
    step1.truths = {TaskTruth{{0, 1}, 1.0, 3}, TaskTruth{{1, 2}, 0.0, 3},
                    TaskTruth{{2, 3}, 0.7, 3}};
    graph = step1.to_preference_graph(4);
    task_workers = {{0, 1, 2}, {0, 1, 2}, {0, 1, 2}};
  }
};

TEST(Smoothing, OneEdgesGetBothDirections) {
  Fixture f({0.8, 0.8, 0.8});
  SmoothingStats stats;
  const auto smoothed = smooth_preferences(f.graph, f.step1, f.task_workers,
                                           {}, nullptr, &stats);
  EXPECT_EQ(stats.one_edges_smoothed, 2u);
  // Forward 1-edge (0,1).
  EXPECT_LT(smoothed.weight(0, 1), 1.0);
  EXPECT_GT(smoothed.weight(1, 0), 0.0);
  EXPECT_NEAR(smoothed.weight(0, 1) + smoothed.weight(1, 0), 1.0, 1e-12);
  // Backward 1-edge (2,1).
  EXPECT_LT(smoothed.weight(2, 1), 1.0);
  EXPECT_GT(smoothed.weight(1, 2), 0.0);
  // Contested task untouched.
  EXPECT_DOUBLE_EQ(smoothed.weight(2, 3), 0.7);
  EXPECT_DOUBLE_EQ(smoothed.weight(3, 2), 0.3);
}

TEST(Smoothing, SmoothedMassMatchesExpectedError) {
  const double q = 0.8;
  Fixture f({q, q, q});
  const auto smoothed = smooth_preferences(f.graph, f.step1, f.task_workers,
                                           {}, nullptr, nullptr);
  const double sigma = -std::log(q);
  const double expected_mass = sigma * std::sqrt(2.0 / M_PI);
  EXPECT_NEAR(smoothed.weight(1, 0), expected_mass, 1e-12);
}

TEST(Smoothing, PerfectWorkersStillLeaveMinimumMass) {
  // q = 1 gives sigma = 0 and expected error 0; the floor keeps the
  // reverse edge alive (otherwise Thm 5.1's guarantee dies).
  Fixture f({1.0, 1.0, 1.0});
  SmoothingConfig config;
  const auto smoothed = smooth_preferences(f.graph, f.step1, f.task_workers,
                                           config, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(smoothed.weight(1, 0), config.min_mass);
  EXPECT_DOUBLE_EQ(smoothed.weight(0, 1), 1.0 - config.min_mass);
}

TEST(Smoothing, TerribleWorkersAreCappedBelowHalf) {
  // Tiny quality -> huge sigma; the cap keeps the unanimous direction
  // preferred (mass < 0.5).
  Fixture f({0.01, 0.01, 0.01});
  SmoothingConfig config;
  const auto smoothed = smooth_preferences(f.graph, f.step1, f.task_workers,
                                           config, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(smoothed.weight(1, 0), config.max_mass);
  EXPECT_GT(smoothed.weight(0, 1), 0.5);
}

TEST(Smoothing, LowerQualityMeansMoreSmoothedMass) {
  Fixture good({0.95, 0.95, 0.95});
  Fixture poor({0.5, 0.5, 0.5});
  const auto sg = smooth_preferences(good.graph, good.step1,
                                     good.task_workers, {}, nullptr, nullptr);
  const auto sp = smooth_preferences(poor.graph, poor.step1,
                                     poor.task_workers, {}, nullptr, nullptr);
  EXPECT_LT(sg.weight(1, 0), sp.weight(1, 0));
}

TEST(Smoothing, ConnectedChainBecomesStronglyConnected) {
  Fixture f({0.8, 0.8, 0.8});
  EXPECT_FALSE(f.graph.is_strongly_connected());
  SmoothingStats stats;
  const auto smoothed = smooth_preferences(f.graph, f.step1, f.task_workers,
                                           {}, nullptr, &stats);
  EXPECT_TRUE(stats.strongly_connected_after);
  EXPECT_TRUE(smoothed.is_strongly_connected());
}

TEST(Smoothing, InOutNodeCountsReported) {
  Fixture f({0.8, 0.8, 0.8});
  SmoothingStats stats;
  smooth_preferences(f.graph, f.step1, f.task_workers, {}, nullptr, &stats);
  // Before smoothing: vertex 0 is an out-node (only outgoing), vertex 3 an
  // in-node.
  EXPECT_EQ(stats.out_nodes_before, 1u);
  EXPECT_EQ(stats.in_nodes_before, 1u);
}

TEST(Smoothing, SampledModeDrawsErrors) {
  Fixture f({0.5, 0.5, 0.5});
  SmoothingConfig config;
  config.mode = SmoothingMode::SampledError;
  Rng rng(1);
  const auto a = smooth_preferences(f.graph, f.step1, f.task_workers, config,
                                    &rng, nullptr);
  Rng rng2(2);
  const auto b = smooth_preferences(f.graph, f.step1, f.task_workers, config,
                                    &rng2, nullptr);
  // Different draws: the masses should (almost surely) differ.
  EXPECT_NE(a.weight(1, 0), b.weight(1, 0));
  // But stay within the clamp.
  EXPECT_GE(a.weight(1, 0), config.min_mass);
  EXPECT_LE(a.weight(1, 0), config.max_mass);
}

TEST(Smoothing, SampledModeRequiresRng) {
  Fixture f({0.5, 0.5, 0.5});
  SmoothingConfig config;
  config.mode = SmoothingMode::SampledError;
  EXPECT_THROW(smooth_preferences(f.graph, f.step1, f.task_workers, config,
                                  nullptr, nullptr),
               Error);
}

TEST(Smoothing, ValidatesConfigAndInputs) {
  Fixture f({0.5, 0.5, 0.5});
  SmoothingConfig bad;
  bad.min_mass = 0.0;
  EXPECT_THROW(smooth_preferences(f.graph, f.step1, f.task_workers, bad,
                                  nullptr, nullptr),
               Error);
  bad = {};
  bad.max_mass = 0.6;
  EXPECT_THROW(smooth_preferences(f.graph, f.step1, f.task_workers, bad,
                                  nullptr, nullptr),
               Error);
  // Worker list count mismatch.
  std::vector<std::vector<WorkerId>> short_list{{0}};
  EXPECT_THROW(smooth_preferences(f.graph, f.step1, short_list, {}, nullptr,
                                  nullptr),
               Error);
}

TEST(WorkerSigma, FromQuality) {
  EXPECT_DOUBLE_EQ(worker_sigma_from_quality(1.0), 0.0);
  EXPECT_NEAR(worker_sigma_from_quality(std::exp(-1.0)), 1.0, 1e-12);
  EXPECT_GT(worker_sigma_from_quality(0.0), 0.0);  // clamped, finite
  EXPECT_LT(worker_sigma_from_quality(0.0), 25.0);
}

}  // namespace
}  // namespace crowdrank
