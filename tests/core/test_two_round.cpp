// Unit tests for the two-round extension.
#include "core/two_round.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

TEST(UncertainPairs, OrdersByDistanceFromHalf) {
  Matrix closure(4, 4, 0.0);
  const auto set_pair = [&](VertexId i, VertexId j, double w) {
    closure(i, j) = w;
    closure(j, i) = 1.0 - w;
  };
  set_pair(0, 1, 0.5);      // perfectly uncertain
  set_pair(0, 2, 0.9);      // confident
  set_pair(0, 3, 0.5625);   // margin 0.0625 (exact in binary)
  set_pair(1, 2, 0.4375);   // margin 0.0625 — an exact tie
  set_pair(1, 3, 0.99);
  set_pair(2, 3, 0.7);
  const auto top = most_uncertain_pairs(closure, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], (Edge{0, 1}));
  // Equal margins: canonical pair order breaks the tie.
  EXPECT_EQ(top[1], (Edge{0, 3}));
  EXPECT_EQ(top[2], (Edge{1, 2}));
}

TEST(UncertainPairs, CountClampedToPairSpace) {
  Matrix closure(3, 3, 0.0);
  closure(0, 1) = closure(1, 0) = 0.5;
  closure(0, 2) = closure(2, 0) = 0.5;
  closure(1, 2) = closure(2, 1) = 0.5;
  EXPECT_EQ(most_uncertain_pairs(closure, 100).size(), 3u);
  EXPECT_TRUE(most_uncertain_pairs(closure, 0).empty());
}

TwoRoundConfig base_config() {
  TwoRoundConfig config;
  config.base.object_count = 40;
  config.base.selection_ratio = 0.2;
  config.base.worker_pool_size = 20;
  config.base.workers_per_task = 3;
  config.base.worker_quality = {QualityDistribution::Gaussian,
                                QualityLevel::Medium};
  config.base.seed = 31;
  return config;
}

TEST(TwoRound, SplitsTheBudgetExactly) {
  auto config = base_config();
  config.round1_fraction = 0.6;
  const TwoRoundResult r = run_two_round_experiment(config);
  // Totals must match the single-round budget for the same ratio.
  const BudgetModel budget =
      BudgetModel::for_selection_ratio(40, 0.2, 0.025, 3);
  EXPECT_EQ(r.round1_tasks + r.round2_tasks, budget.unique_task_count());
  EXPECT_GE(r.round1_tasks, 39u);  // spanning floor
  EXPECT_DOUBLE_EQ(r.total_cost, budget.total_cost());
}

TEST(TwoRound, FractionOneDegeneratesToOneRound) {
  auto config = base_config();
  config.round1_fraction = 1.0;
  const TwoRoundResult r = run_two_round_experiment(config);
  EXPECT_EQ(r.round2_tasks, 0u);
  EXPECT_EQ(r.round2_repeats, 0u);
  EXPECT_EQ(r.inference.ranking.size(), 40u);
}

TEST(TwoRound, ProducesValidRankingAndReasonableAccuracy) {
  const TwoRoundResult r = run_two_round_experiment(base_config());
  EXPECT_EQ(r.inference.ranking.size(), 40u);
  EXPECT_GT(r.accuracy, 0.6);
  EXPECT_LE(r.round2_repeats, r.round2_tasks);
}

TEST(TwoRound, TargetedRoundBeatsOrMatchesBlindOnAverage) {
  // Same total dollars; compare one-round vs two-round over several seeds.
  double one_round = 0.0;
  double two_round = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    auto config = base_config();
    config.base.object_count = 50;
    config.base.selection_ratio = 0.15;
    config.base.seed = 700 + t;

    auto one = config;
    one.round1_fraction = 1.0;
    one_round += run_two_round_experiment(one).accuracy;

    auto two = config;
    two.round1_fraction = 0.7;
    two_round += run_two_round_experiment(two).accuracy;
  }
  // The targeted second round must not be a regression on average (it
  // usually wins: redundancy lands exactly on the contested pairs).
  EXPECT_GE(two_round, one_round - 0.05 * trials);
}

TEST(TwoRound, Validates) {
  auto config = base_config();
  config.round1_fraction = 0.0;
  EXPECT_THROW(run_two_round_experiment(config), Error);
  config = base_config();
  config.round1_fraction = 1.5;
  EXPECT_THROW(run_two_round_experiment(config), Error);
  config = base_config();
  config.base.object_count = 1;
  EXPECT_THROW(run_two_round_experiment(config), Error);
}

TEST(TwoRound, DeterministicGivenSeed) {
  const TwoRoundResult a = run_two_round_experiment(base_config());
  const TwoRoundResult b = run_two_round_experiment(base_config());
  EXPECT_EQ(a.inference.ranking, b.inference.ranking);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

}  // namespace
}  // namespace crowdrank
