// Unit tests for the rankability diagnostics.
#include "core/diagnostics.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "util/error.hpp"

namespace crowdrank {
namespace {

Vote vote(WorkerId k, VertexId i, VertexId j, bool prefers_i) {
  return Vote{k, i, j, prefers_i};
}

TEST(Diagnostics, CleanBatchIsRankable) {
  // Full coverage, 3 consistent workers.
  VoteBatch votes;
  const std::size_t n = 6;
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      for (WorkerId k = 0; k < 3; ++k) {
        votes.push_back(vote(k, i, j, true));
      }
    }
  }
  const auto report = diagnose_votes(votes, n, 3);
  EXPECT_TRUE(report.rankable);
  EXPECT_EQ(report.unique_tasks, 15u);
  EXPECT_NEAR(report.pair_coverage, 1.0, 1e-12);
  EXPECT_EQ(report.objects_never_compared, 0u);
  EXPECT_DOUBLE_EQ(report.mean_votes_per_task, 3.0);
  EXPECT_EQ(report.unanimous_tasks, 15u);
  EXPECT_EQ(report.contested_tasks, 0u);
  EXPECT_TRUE(report.direct_graph_connected);
  // Identity chain: the direct graph is a DAG -> n singleton SCCs.
  EXPECT_EQ(report.scc_count, n);
}

TEST(Diagnostics, UncoveredObjectFlagged) {
  const VoteBatch votes{vote(0, 0, 1, true), vote(0, 1, 2, true)};
  const auto report = diagnose_votes(votes, 4, 1);
  EXPECT_FALSE(report.rankable);
  EXPECT_EQ(report.objects_never_compared, 1u);  // object 3
  bool mentioned = false;
  for (const auto& f : report.findings) {
    mentioned |= f.find("never compared") != std::string::npos;
  }
  EXPECT_TRUE(mentioned);
}

TEST(Diagnostics, DisconnectedCoverageFlagged) {
  // Two islands: {0,1} and {2,3}.
  const VoteBatch votes{vote(0, 0, 1, true), vote(0, 2, 3, true)};
  const auto report = diagnose_votes(votes, 4, 1);
  EXPECT_FALSE(report.rankable);
  EXPECT_FALSE(report.direct_graph_connected);
}

TEST(Diagnostics, ContestedTasksCounted) {
  VoteBatch votes;
  for (WorkerId k = 0; k < 4; ++k) {
    votes.push_back(vote(k, 0, 1, k % 2 == 0));  // 2-2 split
    votes.push_back(vote(k, 1, 2, true));        // unanimous
  }
  const auto report = diagnose_votes(votes, 3, 4);
  EXPECT_EQ(report.contested_tasks, 1u);
  EXPECT_EQ(report.unanimous_tasks, 1u);
}

TEST(Diagnostics, SingleVoteTasksFlagged) {
  const VoteBatch votes{vote(0, 0, 1, true), vote(0, 1, 2, true),
                        vote(0, 0, 2, true)};
  const auto report = diagnose_votes(votes, 3, 1);
  EXPECT_EQ(report.min_votes_per_task, 1u);
  bool mentioned = false;
  for (const auto& f : report.findings) {
    mentioned |= f.find("single vote") != std::string::npos;
  }
  EXPECT_TRUE(mentioned);
}

TEST(Diagnostics, EmptyBatchHandled) {
  const auto report = diagnose_votes({}, 5, 3);
  EXPECT_FALSE(report.rankable);
  EXPECT_EQ(report.vote_count, 0u);
  EXPECT_EQ(report.objects_never_compared, 5u);
}

TEST(Diagnostics, SimulatedRoundLooksHealthy) {
  ExperimentConfig config;
  config.object_count = 30;
  config.selection_ratio = 0.3;
  config.worker_pool_size = 15;
  config.seed = 3;
  // Rebuild the same votes run_experiment would see.
  Rng rng(config.seed);
  auto perm = rng.permutation(config.object_count);
  const Ranking truth(std::vector<VertexId>(perm.begin(), perm.end()));
  const BudgetModel budget = BudgetModel::for_selection_ratio(
      config.object_count, config.selection_ratio, 0.025, 3);
  const auto ta = generate_task_assignment(config.object_count,
                                           budget.unique_task_count(), rng);
  std::vector<Edge> tasks(ta.graph.edges().begin(), ta.graph.edges().end());
  const HitAssignment assignment(tasks, HitConfig{5, 3}, 15, rng);
  const auto workers = sample_worker_pool(
      15, {QualityDistribution::Gaussian, QualityLevel::Medium}, rng);
  const SimulatedCrowd crowd(truth, workers);
  const VoteBatch votes = crowd.collect(assignment, rng);

  const auto report = diagnose_votes(votes, config.object_count, 15);
  EXPECT_TRUE(report.rankable);
  EXPECT_GT(report.mean_worker_quality, 0.7);
  EXPECT_EQ(report.min_votes_per_task, 3u);
}

TEST(Diagnostics, FormatContainsVerdict) {
  const VoteBatch votes{vote(0, 0, 1, true)};
  const auto report = diagnose_votes(votes, 2, 1);
  const std::string text = format_report(report);
  EXPECT_NE(text.find("rankability report"), std::string::npos);
  EXPECT_NE(text.find("verdict"), std::string::npos);
}

TEST(Diagnostics, Validates) {
  EXPECT_THROW(diagnose_votes({}, 1, 1), Error);
}

}  // namespace
}  // namespace crowdrank
