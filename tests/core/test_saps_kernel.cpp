// Bitwise pins for the SAPS log-cost cache (core/saps_kernel.hpp): every
// cached kernel must agree bit for bit with the uncached safe_log
// formulation it replaced, on randomized closures and on the clamp/floor
// edge cases (zero weights hitting the safe_log floor, weights at exactly
// the completeness-floor clamp, subnormal weights).
#include "core/saps_kernel.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "core/saps.hpp"
#include "graph/hamiltonian.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

// Exact comparison through the bit pattern: EXPECT_EQ on doubles would
// also pass for -0.0 == 0.0 and is unclear about intent; the cache
// contract is *bitwise* agreement.
::testing::AssertionResult BitsEqual(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ bitwise";
}

Matrix random_closure(std::size_t n, Rng& rng) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double w = rng.uniform(0.05, 0.95);
      m(i, j) = w;
      m(j, i) = 1.0 - w;
    }
  }
  return m;
}

/// A matrix exercising every branch of safe_log: zeros (floor), exact
/// clamp values, ones, and subnormals, scattered over a random base.
Matrix edge_case_matrix(std::size_t n, Rng& rng) {
  Matrix m = random_closure(n, rng);
  m(0, 1) = 0.0;                       // safe_log floor
  m(1, 0) = 1.0;                       // log(1) == 0 exactly
  m(1, 2) = 0.01;                      // typical completeness_floor clamp
  m(2, 1) = 0.99;                      // 1 - floor clamp
  m(2, 3) = 5e-324;                    // smallest subnormal
  m(3, 2) = 1e-300;                    // deep underflow territory
  return m;
}

class SapsKernelBitwise : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SapsKernelBitwise, CostsMatchSafeLogExactly) {
  const std::size_t n = GetParam();
  Rng rng(700 + n);
  const Matrix m = edge_case_matrix(n, rng);
  const SapsCostCache cache(m);
  ASSERT_EQ(cache.size(), n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      EXPECT_TRUE(BitsEqual(cache.cost(u, v), -math::safe_log(m(u, v))))
          << "edge " << u << " -> " << v;
    }
  }
}

TEST_P(SapsKernelBitwise, PathLogCostMatchesUncached) {
  const std::size_t n = GetParam();
  Rng rng(800 + n);
  const Matrix m = edge_case_matrix(n, rng);
  const SapsCostCache cache(m);
  for (int trial = 0; trial < 20; ++trial) {
    const auto perm = rng.permutation(n);
    const Path path(perm.begin(), perm.end());
    EXPECT_TRUE(BitsEqual(path_log_cost(cache, path),
                          path_log_cost(m, path)))
        << "trial " << trial;
  }
}

TEST_P(SapsKernelBitwise, DeltasMatchUncachedFormulation) {
  const std::size_t n = GetParam();
  Rng rng(900 + n);
  const Matrix m = edge_case_matrix(n, rng);
  const SapsCostCache cache(m);
  Path path(n);
  for (std::size_t i = 0; i < n; ++i) path[i] = i;
  rng.shuffle(path);

  for (int trial = 0; trial < 80; ++trial) {
    std::size_t a = rng.uniform_index(n);
    std::size_t b = rng.uniform_index(n);
    if (a > b) std::swap(a, b);
    const std::size_t mid = a + rng.uniform_index(b - a + 1);

    EXPECT_TRUE(BitsEqual(saps_rotate_delta(cache, path, a, mid, b),
                          saps_rotate_delta(m, path, a, mid, b)))
        << "rotate " << a << "," << mid << "," << b;
    EXPECT_TRUE(BitsEqual(saps_reverse_delta(cache, path, a, b),
                          saps_reverse_delta(m, path, a, b)))
        << "reverse " << a << "," << b;
    EXPECT_TRUE(BitsEqual(saps_swap_delta(cache, path, a, b),
                          saps_swap_delta(m, path, a, b)))
        << "swap " << a << "," << b;
    // Swap argument order must not matter either way.
    EXPECT_TRUE(BitsEqual(saps_swap_delta(cache, path, b, a),
                          saps_swap_delta(m, path, b, a)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SapsKernelBitwise,
                         ::testing::Values(4, 8, 25, 60));

TEST(SapsKernel, CacheFillIsThreadCountInvariant) {
  // The materialization is an element-disjoint parallel transform; the
  // stored costs must not depend on the pool width.
  Rng rng(41);
  const Matrix m = random_closure(140, rng);  // > one fill chunk
  set_thread_count(1);
  const SapsCostCache narrow(m);
  set_thread_count(4);
  const SapsCostCache wide(m);
  set_thread_count(configured_thread_count());
  for (VertexId u = 0; u < 140; ++u) {
    for (VertexId v = 0; v < 140; ++v) {
      ASSERT_TRUE(BitsEqual(narrow.cost(u, v), wide.cost(u, v)));
    }
  }
}

TEST(SapsKernel, GreedyInitialPathMatchesWeightGreedy) {
  // Min-cost hop == max-weight hop: rebuild the legacy weight-matrix
  // greedy walk and require the cached init to reproduce it exactly.
  Rng rng(42);
  const std::size_t n = 30;
  const Matrix m = random_closure(n, rng);
  const SapsCostCache cache(m);

  for (VertexId start = 0; start < 5; ++start) {
    Path expected;
    std::vector<bool> used(n, false);
    VertexId current = start;
    expected.push_back(current);
    used[current] = true;
    for (std::size_t step = 1; step < n; ++step) {
      VertexId best = n;
      double best_w = -1.0;
      for (VertexId next = 0; next < n; ++next) {
        if (!used[next] && m(current, next) > best_w) {
          best_w = m(current, next);
          best = next;
        }
      }
      expected.push_back(best);
      used[best] = true;
      current = best;
    }

    Rng unused(0);
    const Path got =
        saps_initial_path(cache, start, SapsInitMode::GreedyNearestNeighbor,
                          /*force_anchor=*/false, unused);
    EXPECT_EQ(got, expected) << "start " << start;
  }
}

TEST(SapsKernel, InitialPathModesProduceAnchoredPermutations) {
  Rng rng(43);
  const std::size_t n = 12;
  const Matrix m = edge_case_matrix(n, rng);
  const SapsCostCache cache(m);
  for (const auto mode :
       {SapsInitMode::GreedyNearestNeighbor,
        SapsInitMode::WeightDifferenceRanking,
        SapsInitMode::RandomPermutation}) {
    Rng init_rng(7);
    const Path p = saps_initial_path(cache, 5, mode, /*force_anchor=*/true,
                                     init_rng);
    EXPECT_TRUE(is_permutation_path(p, n));
    EXPECT_EQ(p.front(), 5u);
  }
}

}  // namespace
}  // namespace crowdrank
