// Unit tests for the budget planner (§VIII future-work objective).
#include "core/planning.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace crowdrank {
namespace {

PlanningConfig base_config() {
  PlanningConfig config;
  config.object_count = 40;
  config.worker_pool_size = 20;
  config.workers_per_task = 3;
  config.worker_quality = {QualityDistribution::Gaussian,
                           QualityLevel::High};
  config.trials_per_probe = 2;
  config.seed = 5;
  return config;
}

TEST(Planning, FindsAPlanForModestTargets) {
  auto config = base_config();
  config.target_accuracy = 0.85;
  const auto plan = plan_budget_for_accuracy(config);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GE(plan->estimated_accuracy, 0.85);
  EXPECT_GT(plan->selection_ratio, 0.0);
  EXPECT_LE(plan->selection_ratio, 1.0);
  EXPECT_GT(plan->unique_comparisons, 0u);
  EXPECT_GT(plan->total_cost, 0.0);
}

TEST(Planning, HigherTargetsCostMore) {
  auto config = base_config();
  config.target_accuracy = 0.8;
  const auto cheap = plan_budget_for_accuracy(config);
  config.target_accuracy = 0.95;
  const auto dear = plan_budget_for_accuracy(config);
  ASSERT_TRUE(cheap.has_value());
  ASSERT_TRUE(dear.has_value());
  EXPECT_LE(cheap->selection_ratio, dear->selection_ratio + 1e-9);
}

TEST(Planning, ImpossibleTargetReturnsNullopt) {
  auto config = base_config();
  // Low-quality workers cannot reach 0.99 even with all pairs.
  config.worker_quality = {QualityDistribution::Gaussian,
                           QualityLevel::Low};
  config.target_accuracy = 0.99;
  const auto plan = plan_budget_for_accuracy(config);
  EXPECT_FALSE(plan.has_value());
}

TEST(Planning, TrivialTargetUsesConnectivityFloor) {
  auto config = base_config();
  config.target_accuracy = 0.51;
  const auto plan = plan_budget_for_accuracy(config);
  ASSERT_TRUE(plan.has_value());
  // The cheapest probe (l = n - 1) should already clear a coin-flip-ish
  // bar with high-quality workers.
  EXPECT_EQ(plan->unique_comparisons, config.object_count - 1);
  EXPECT_EQ(plan->probes_run, 1u);
}

TEST(Planning, RespectsProbeBudget) {
  auto config = base_config();
  config.target_accuracy = 0.9;
  config.max_probes = 3;
  const auto plan = plan_budget_for_accuracy(config);
  if (plan.has_value()) {
    EXPECT_LE(plan->probes_run, 3u);
  }
}

TEST(Planning, CostMatchesBudgetModelArithmetic) {
  auto config = base_config();
  config.target_accuracy = 0.85;
  const auto plan = plan_budget_for_accuracy(config);
  ASSERT_TRUE(plan.has_value());
  EXPECT_NEAR(plan->total_cost,
              static_cast<double>(plan->unique_comparisons) * 3 * 0.025,
              1e-9);
}

TEST(Planning, Validates) {
  auto config = base_config();
  config.target_accuracy = 0.4;
  EXPECT_THROW(plan_budget_for_accuracy(config), Error);
  config = base_config();
  config.target_accuracy = 1.0;
  EXPECT_THROW(plan_budget_for_accuracy(config), Error);
  config = base_config();
  config.trials_per_probe = 0;
  EXPECT_THROW(plan_budget_for_accuracy(config), Error);
  config = base_config();
  config.object_count = 1;
  EXPECT_THROW(plan_budget_for_accuracy(config), Error);
}

}  // namespace
}  // namespace crowdrank
