// End-to-end tests of the inference engine and the experiment driver.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "metrics/kendall.hpp"
#include "util/error.hpp"

namespace crowdrank {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.object_count = 20;
  config.selection_ratio = 0.5;
  config.worker_pool_size = 15;
  config.workers_per_task = 3;
  config.worker_quality = {QualityDistribution::Gaussian,
                           QualityLevel::High};
  config.inference.saps.iterations = 800;
  config.seed = 1234;
  return config;
}

TEST(Pipeline, HighQualityWorkersRecoverTruthAlmostExactly) {
  auto config = base_config();
  config.selection_ratio = 1.0;
  const ExperimentResult r = run_experiment(config);
  EXPECT_GT(r.accuracy, 0.97);
}

TEST(Pipeline, ResultIsValidFullRanking) {
  const ExperimentResult r = run_experiment(base_config());
  EXPECT_EQ(r.inference.ranking.size(), 20u);
  EXPECT_EQ(r.truth.size(), 20u);
}

TEST(Pipeline, AccuracyDegradesGracefullyWithWorkerQuality) {
  auto config = base_config();
  config.worker_quality.level = QualityLevel::High;
  const double high = run_experiment(config).accuracy;
  config.worker_quality.level = QualityLevel::Low;
  const double low = run_experiment(config).accuracy;
  EXPECT_GE(high, low - 0.05);
  EXPECT_GT(high, 0.9);
}

TEST(Pipeline, BiggerBudgetHelps) {
  auto config = base_config();
  config.object_count = 30;
  config.worker_quality.level = QualityLevel::Medium;
  config.selection_ratio = 0.15;
  double small_budget = 0.0;
  double large_budget = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    config.seed = seed;
    config.selection_ratio = 0.15;
    small_budget += run_experiment(config).accuracy;
    config.selection_ratio = 0.9;
    large_budget += run_experiment(config).accuracy;
  }
  EXPECT_GE(large_budget, small_budget);
}

TEST(Pipeline, PhaseTimingsCoverAllFourSteps) {
  const ExperimentResult r = run_experiment(base_config());
  const auto& phases = r.inference.timings.phases();
  ASSERT_EQ(phases.size(), 4u);
  EXPECT_EQ(phases[0], "step1_truth_discovery");
  EXPECT_EQ(phases[1], "step2_smoothing");
  EXPECT_EQ(phases[2], "step3_propagation");
  EXPECT_EQ(phases[3], "step4_find_best_ranking");
  EXPECT_GT(r.inference.timings.total_seconds(), 0.0);
}

TEST(Pipeline, DiagnosticsAreConsistent) {
  const ExperimentResult r = run_experiment(base_config());
  EXPECT_EQ(r.inference.step2.one_edges_smoothed, r.inference.one_edge_count);
  EXPECT_TRUE(r.inference.step2.strongly_connected_after);
  EXPECT_TRUE(r.inference.step3.complete);
  EXPECT_EQ(r.unique_tasks, r.inference.step1.truths.size());
  EXPECT_GT(r.total_cost, 0.0);
}

TEST(Pipeline, ClosureExposedAndNormalized) {
  const ExperimentResult r = run_experiment(base_config());
  ASSERT_EQ(r.inference.closure.rows(), 20u);
  ASSERT_TRUE(r.inference.closure.is_square());
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = i + 1; j < 20; ++j) {
      EXPECT_NEAR(r.inference.closure(i, j) + r.inference.closure(j, i),
                  1.0, 1e-9);
      EXPECT_GT(r.inference.closure(i, j), 0.0);
    }
    EXPECT_DOUBLE_EQ(r.inference.closure(i, i), 0.0);
  }
}

TEST(Pipeline, DeterministicGivenSeed) {
  const ExperimentResult a = run_experiment(base_config());
  const ExperimentResult b = run_experiment(base_config());
  EXPECT_EQ(a.inference.ranking, b.inference.ranking);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST(Pipeline, SearchMethodsAgreeOnSmallInstances) {
  auto config = base_config();
  config.object_count = 9;
  config.selection_ratio = 1.0;
  config.inference.search = RankSearchMethod::HeldKarp;
  const ExperimentResult hk = run_experiment(config);
  config.inference.search = RankSearchMethod::Taps;
  const ExperimentResult taps = run_experiment(config);
  // Both exact searches must report the same optimal probability.
  EXPECT_NEAR(hk.inference.log_probability, taps.inference.log_probability,
              1e-9);
  config.inference.search = RankSearchMethod::Saps;
  config.inference.saps.iterations = 2000;
  const ExperimentResult saps = run_experiment(config);
  EXPECT_LE(saps.inference.log_probability,
            hk.inference.log_probability + 1e-9);
  // SAPS should usually match the optimum at this size.
  EXPECT_GT(ranking_accuracy(hk.inference.ranking, saps.inference.ranking),
            0.85);
}

TEST(Pipeline, InferenceEngineRejectsForeignVotes) {
  // Votes referencing a task outside the assignment must be caught.
  Rng rng(5);
  std::vector<Edge> tasks{Edge{0, 1}};
  const HitAssignment assignment(tasks, HitConfig{1, 2}, 3, rng);
  VoteBatch votes{Vote{0, 0, 1, true}, Vote{1, 0, 1, true},
                  Vote{0, 1, 2, true}};  // (1,2) was never assigned
  const InferenceEngine engine;
  EXPECT_THROW(engine.infer(votes, 3, 3, assignment, rng), Error);
}

TEST(Pipeline, ValidatesExperimentConfig) {
  ExperimentConfig config = base_config();
  config.workers_per_task = 99;  // exceeds pool
  EXPECT_THROW(run_experiment(config), Error);
  config = base_config();
  config.object_count = 1;
  EXPECT_THROW(run_experiment(config), Error);
}

TEST(Pipeline, TinyInstancesWork) {
  // n = 2 and n = 3: the smallest legal problems exercise every boundary
  // (single task, single boundary, single smoothing candidate).
  for (const std::size_t n : {2u, 3u}) {
    ExperimentConfig config;
    config.object_count = n;
    config.selection_ratio = 1.0;
    config.worker_pool_size = 5;
    config.workers_per_task = 3;
    config.worker_quality = {QualityDistribution::Gaussian,
                             QualityLevel::High};
    config.seed = 77 + n;
    const ExperimentResult r = run_experiment(config);
    EXPECT_EQ(r.inference.ranking.size(), n);
    EXPECT_GT(r.accuracy, 0.99) << "n=" << n;  // perfect workers, all pairs
  }
}

TEST(Pipeline, UniformDistributionAlsoWorks) {
  auto config = base_config();
  config.worker_quality = {QualityDistribution::Uniform,
                           QualityLevel::Medium};
  const ExperimentResult r = run_experiment(config);
  EXPECT_GT(r.accuracy, 0.8);
}

TEST(Pipeline, ExactPathsPropagationModeOnSmallInstance) {
  auto config = base_config();
  config.object_count = 8;
  config.selection_ratio = 1.0;
  config.inference.propagation.mode = PropagationMode::ExactPaths;
  config.inference.propagation.max_length = 4;
  const ExperimentResult r = run_experiment(config);
  EXPECT_EQ(r.inference.ranking.size(), 8u);
  EXPECT_GT(r.accuracy, 0.9);
}

TEST(Pipeline, LowBudgetStillProducesFullRanking) {
  auto config = base_config();
  config.object_count = 40;
  config.selection_ratio = 0.06;  // barely above the spanning floor
  const ExperimentResult r = run_experiment(config);
  EXPECT_EQ(r.inference.ranking.size(), 40u);
  EXPECT_GT(r.accuracy, 0.5);  // far better than random even when sparse
}

}  // namespace
}  // namespace crowdrank
