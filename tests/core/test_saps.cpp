// Unit + property tests for SAPS (paper §V-D2, Algorithms 2-3).
#include "core/saps.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/hamiltonian.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

Matrix random_closure(std::size_t n, Rng& rng) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double w = rng.uniform(0.05, 0.95);
      m(i, j) = w;
      m(j, i) = 1.0 - w;
    }
  }
  return m;
}

TEST(SapsMoves, RotatePreservesPermutation) {
  Path p{0, 1, 2, 3, 4, 5};
  saps_rotate(p, 1, 3, 4);
  EXPECT_EQ(p, (Path{0, 3, 4, 1, 2, 5}));
  EXPECT_TRUE(is_permutation_path(p, 6));
}

TEST(SapsMoves, RotateWithMiddleAtFirstIsNoop) {
  Path p{0, 1, 2, 3};
  saps_rotate(p, 1, 1, 3);
  EXPECT_EQ(p, (Path{0, 1, 2, 3}));
}

TEST(SapsMoves, ReverseSegment) {
  Path p{0, 1, 2, 3, 4};
  saps_reverse(p, 1, 3);
  EXPECT_EQ(p, (Path{0, 3, 2, 1, 4}));
}

TEST(SapsMoves, SwapTwoNodes) {
  Path p{0, 1, 2, 3};
  saps_swap(p, 0, 3);
  EXPECT_EQ(p, (Path{3, 1, 2, 0}));
}

TEST(SapsMoves, IndexPreconditions) {
  Path p{0, 1, 2};
  EXPECT_THROW(saps_rotate(p, 2, 1, 2), Error);
  EXPECT_THROW(saps_rotate(p, 0, 1, 3), Error);
  EXPECT_THROW(saps_reverse(p, 2, 1), Error);
  EXPECT_THROW(saps_reverse(p, 0, 3), Error);
  EXPECT_THROW(saps_swap(p, 0, 3), Error);
}

TEST(SapsMoves, RandomMovesAlwaysPreservePermutation) {
  Rng rng(31);
  Path p(20);
  for (std::size_t i = 0; i < 20; ++i) p[i] = i;
  for (int step = 0; step < 500; ++step) {
    std::size_t a = rng.uniform_index(20);
    std::size_t b = rng.uniform_index(20);
    if (a > b) std::swap(a, b);
    switch (step % 3) {
      case 0: {
        const std::size_t mid = a + rng.uniform_index(b - a + 1);
        saps_rotate(p, a, mid, b);
        break;
      }
      case 1:
        saps_reverse(p, a, b);
        break;
      default:
        saps_swap(p, a, b);
    }
    ASSERT_TRUE(is_permutation_path(p, 20)) << "step " << step;
  }
}

class SapsDeltaProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SapsDeltaProperty, DeltasMatchBruteForceRecompute) {
  const std::size_t n = GetParam();
  Rng rng(500 + n);
  const Matrix m = random_closure(n, rng);
  Path path(n);
  for (std::size_t i = 0; i < n; ++i) path[i] = i;
  rng.shuffle(path);
  const double base = path_log_cost(m, path);

  for (int trial = 0; trial < 60; ++trial) {
    std::size_t a = rng.uniform_index(n);
    std::size_t b = rng.uniform_index(n);
    if (a > b) std::swap(a, b);
    const std::size_t mid = a + rng.uniform_index(b - a + 1);

    Path rotated = path;
    saps_rotate(rotated, a, mid, b);
    EXPECT_NEAR(saps_rotate_delta(m, path, a, mid, b),
                path_log_cost(m, rotated) - base, 1e-9)
        << "rotate " << a << "," << mid << "," << b;

    Path reversed = path;
    saps_reverse(reversed, a, b);
    EXPECT_NEAR(saps_reverse_delta(m, path, a, b),
                path_log_cost(m, reversed) - base, 1e-9)
        << "reverse " << a << "," << b;

    Path swapped = path;
    saps_swap(swapped, a, b);
    EXPECT_NEAR(saps_swap_delta(m, path, a, b),
                path_log_cost(m, swapped) - base, 1e-9)
        << "swap " << a << "," << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SapsDeltaProperty,
                         ::testing::Values(2, 3, 4, 8, 25, 80));

TEST(SapsDelta, NoOpMovesAreZero) {
  Rng rng(99);
  const Matrix m = random_closure(6, rng);
  const Path path{0, 1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(saps_rotate_delta(m, path, 1, 1, 4), 0.0);
  EXPECT_DOUBLE_EQ(saps_reverse_delta(m, path, 3, 3), 0.0);
  EXPECT_DOUBLE_EQ(saps_swap_delta(m, path, 2, 2), 0.0);
}

TEST(SapsDelta, SwapIsSymmetricInArguments) {
  Rng rng(100);
  const Matrix m = random_closure(8, rng);
  const Path path{4, 1, 7, 0, 3, 6, 2, 5};
  EXPECT_DOUBLE_EQ(saps_swap_delta(m, path, 1, 6),
                   saps_swap_delta(m, path, 6, 1));
}

TEST(Saps, FindsOptimumOnSmallClosures) {
  Rng rng(32);
  int optimal_hits = 0;
  const int trials = 15;
  for (int trial = 0; trial < trials; ++trial) {
    const Matrix m = random_closure(7, rng);
    SapsConfig config;
    config.iterations = 1500;
    config.restarts = 4;
    Rng search_rng(100 + trial);
    const SapsResult saps = saps_search(m, config, search_rng);
    const auto hk = max_probability_hamiltonian_path(m);
    ASSERT_TRUE(hk.has_value());
    const double exact = -path_log_cost(m, *hk);
    EXPECT_LE(-saps.log_cost, exact + 1e-9);
    if (std::abs(-saps.log_cost - exact) < 1e-9) ++optimal_hits;
  }
  // The heuristic should find the global optimum almost always at n = 7.
  EXPECT_GE(optimal_hits, trials - 2);
}

TEST(Saps, OutputIsAlwaysValidPermutation) {
  Rng rng(33);
  for (const std::size_t n : {2u, 3u, 10u, 40u}) {
    const Matrix m = random_closure(n, rng);
    Rng search_rng(n);
    const SapsResult r = saps_search(m, {}, search_rng);
    EXPECT_TRUE(is_permutation_path(r.best_path, n));
    EXPECT_GT(r.moves_proposed, 0u);
    EXPECT_NEAR(r.probability, std::exp(-r.log_cost), 1e-12);
  }
}

TEST(Saps, DeterministicGivenSeed) {
  Rng rng(34);
  const Matrix m = random_closure(12, rng);
  Rng a(7);
  Rng b(7);
  const SapsResult ra = saps_search(m, {}, a);
  const SapsResult rb = saps_search(m, {}, b);
  EXPECT_EQ(ra.best_path, rb.best_path);
  EXPECT_DOUBLE_EQ(ra.log_cost, rb.log_cost);
}

TEST(Saps, MoreIterationsNeverHurt) {
  Rng rng(35);
  const Matrix m = random_closure(15, rng);
  SapsConfig small;
  small.iterations = 50;
  SapsConfig large;
  large.iterations = 3000;
  Rng ra(9);
  Rng rb(9);
  const double cost_small = saps_search(m, small, ra).log_cost;
  const double cost_large = saps_search(m, large, rb).log_cost;
  EXPECT_LE(cost_large, cost_small + 1e-9);
}

TEST(Saps, PaperModeRestartsFromEveryVertex) {
  Rng rng(36);
  const Matrix m = random_closure(6, rng);
  SapsConfig config;
  config.paper_mode = true;
  config.iterations = 50;
  Rng search_rng(1);
  const SapsResult r = saps_search(m, config, search_rng);
  EXPECT_EQ(r.restarts_run, 6u);
}

TEST(Saps, InitModesAllWork) {
  Rng rng(37);
  const Matrix m = random_closure(10, rng);
  for (const auto mode :
       {SapsInitMode::GreedyNearestNeighbor,
        SapsInitMode::WeightDifferenceRanking,
        SapsInitMode::RandomPermutation}) {
    SapsConfig config;
    config.init_mode = mode;
    config.iterations = 200;
    Rng search_rng(2);
    const SapsResult r = saps_search(m, config, search_rng);
    EXPECT_TRUE(is_permutation_path(r.best_path, 10));
  }
}

TEST(Saps, MoveTogglesRespected) {
  Rng rng(38);
  const Matrix m = random_closure(8, rng);
  SapsConfig only_swap;
  only_swap.use_rotate = false;
  only_swap.use_reverse = false;
  Rng search_rng(3);
  const SapsResult r = saps_search(m, only_swap, search_rng);
  EXPECT_TRUE(is_permutation_path(r.best_path, 8));
  SapsConfig none;
  none.use_rotate = none.use_reverse = none.use_swap = false;
  EXPECT_THROW(saps_search(m, none, search_rng), Error);
}

TEST(Saps, ValidatesConfig) {
  Rng rng(39);
  const Matrix m = random_closure(5, rng);
  SapsConfig bad;
  bad.iterations = 0;
  EXPECT_THROW(saps_search(m, bad, rng), Error);
  bad = {};
  bad.initial_temperature = 0.0;
  EXPECT_THROW(saps_search(m, bad, rng), Error);
  bad = {};
  bad.cooling_rate = 1.5;
  EXPECT_THROW(saps_search(m, bad, rng), Error);
  bad = {};
  bad.restarts = 0;
  EXPECT_THROW(saps_search(m, bad, rng), Error);
}

TEST(Saps, GreedyInitAloneIsWorseOrEqual) {
  // Annealing must not end worse than its own greedy initialization.
  Rng rng(40);
  const Matrix m = random_closure(20, rng);
  // Reconstruct the greedy-from-0 path cost.
  Path greedy;
  std::vector<bool> used(20, false);
  VertexId current = 0;
  greedy.push_back(0);
  used[0] = true;
  for (std::size_t step = 1; step < 20; ++step) {
    VertexId best = 20;
    double best_w = -1.0;
    for (VertexId next = 0; next < 20; ++next) {
      if (!used[next] && m(current, next) > best_w) {
        best_w = m(current, next);
        best = next;
      }
    }
    greedy.push_back(best);
    used[best] = true;
    current = best;
  }
  const double greedy_cost = path_log_cost(m, greedy);
  SapsConfig config;
  config.restarts = 1;
  Rng search_rng(4);
  const SapsResult r = saps_search(m, config, search_rng);
  EXPECT_LE(r.log_cost, greedy_cost + 1e-9);
}

}  // namespace
}  // namespace crowdrank
