// Unit tests for ranking confidence annotation.
#include "core/confidence.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/propagation.hpp"
#include "graph/preference_graph.hpp"
#include "util/error.hpp"

namespace crowdrank {
namespace {

Matrix closure_for(std::initializer_list<double> boundary_beliefs) {
  // Builds an (n x n) closure whose consecutive-pair weights along the
  // identity ranking are the given values; all other pairs confident 0.9.
  const std::size_t n = boundary_beliefs.size() + 1;
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      m(i, j) = 0.9;
      m(j, i) = 0.1;
    }
  }
  std::size_t p = 0;
  for (const double w : boundary_beliefs) {
    m(p, p + 1) = w;
    m(p + 1, p) = 1.0 - w;
    ++p;
  }
  return m;
}

TEST(Confidence, ProfileMatchesClosureWeights) {
  const Matrix m = closure_for({0.8, 0.55, 0.95});
  const auto c = ranking_confidence(m, Ranking::identity(4));
  ASSERT_EQ(c.boundary_belief.size(), 3u);
  EXPECT_DOUBLE_EQ(c.boundary_belief[0], 0.8);
  EXPECT_DOUBLE_EQ(c.boundary_belief[1], 0.55);
  EXPECT_DOUBLE_EQ(c.boundary_belief[2], 0.95);
  EXPECT_DOUBLE_EQ(c.min_belief, 0.55);
  EXPECT_EQ(c.weakest_boundary, 1u);
  EXPECT_NEAR(c.mean_belief, (0.8 + 0.55 + 0.95) / 3.0, 1e-12);
  EXPECT_NEAR(c.per_edge_geometric_mean,
              std::cbrt(0.8 * 0.55 * 0.95), 1e-12);
}

TEST(Confidence, ReversedRankingSeesComplementWeights) {
  const Matrix m = closure_for({0.8, 0.8, 0.8});
  const auto c =
      ranking_confidence(m, Ranking::identity(4).reversed());
  for (const double b : c.boundary_belief) {
    EXPECT_LE(b, 0.2 + 1e-12);
  }
}

TEST(Confidence, TiedGroupsSplitAtConfidentBoundaries) {
  // Boundaries: weak(0.51), strong(0.9), weak(0.52) -> groups
  // {0,1}, {2,3}.
  const Matrix m = closure_for({0.51, 0.9, 0.52});
  const auto groups =
      effectively_tied_groups(m, Ranking::identity(4), 0.55);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<VertexId>{2, 3}));
}

TEST(Confidence, AllConfidentMeansSingletonGroups) {
  const Matrix m = closure_for({0.9, 0.9});
  const auto groups =
      effectively_tied_groups(m, Ranking::identity(3), 0.55);
  EXPECT_EQ(groups.size(), 3u);
}

TEST(Confidence, AllWeakMeansOneGroup) {
  const Matrix m = closure_for({0.5, 0.5, 0.5, 0.5});
  const auto groups =
      effectively_tied_groups(m, Ranking::identity(5), 0.55);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 5u);
}

TEST(Confidence, GroupsPartitionTheRanking) {
  const Matrix m = closure_for({0.51, 0.9, 0.52, 0.7, 0.5});
  const auto groups =
      effectively_tied_groups(m, Ranking::identity(6), 0.6);
  std::size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, 6u);
}

TEST(Confidence, IntegratesWithPropagationOutput) {
  // A clean chain through Step 3: the weakest boundary must be one of the
  // adjacent-in-truth pairs (they carry the least transitive support).
  PreferenceGraph g(6);
  for (VertexId i = 0; i + 1 < 6; ++i) {
    g.set_weight(i, i + 1, 0.9);
    g.set_weight(i + 1, i, 0.1);
  }
  const Matrix closure = propagate_preferences(g, {}, nullptr);
  const auto c = ranking_confidence(closure, Ranking::identity(6));
  EXPECT_GT(c.min_belief, 0.5);  // still correctly oriented everywhere
  EXPECT_GT(c.per_edge_geometric_mean, 0.5);
}

TEST(Confidence, Validates) {
  const Matrix m = closure_for({0.8});
  EXPECT_THROW(ranking_confidence(m, Ranking::identity(3)), Error);
  EXPECT_THROW(
      effectively_tied_groups(m, Ranking::identity(2), 0.4), Error);
  EXPECT_THROW(
      effectively_tied_groups(m, Ranking::identity(2), 1.1), Error);
}

}  // namespace
}  // namespace crowdrank
