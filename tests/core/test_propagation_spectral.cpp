// Unit tests for the SpectralLimit propagation mode.
#include <gtest/gtest.h>
#include <cmath>

#include "core/propagation.hpp"
#include "graph/hamiltonian.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

PreferenceGraph smoothed_chain(std::size_t n, double forward = 0.9) {
  PreferenceGraph g(n);
  for (VertexId i = 0; i + 1 < n; ++i) {
    g.set_weight(i, i + 1, forward);
    g.set_weight(i + 1, i, 1.0 - forward);
  }
  return g;
}

PropagationConfig spectral() {
  PropagationConfig config;
  config.mode = PropagationMode::SpectralLimit;
  return config;
}

TEST(SpectralPropagation, ClosureCompleteAndNormalized) {
  const auto g = smoothed_chain(8);
  PropagationStats stats;
  const Matrix closure = propagate_preferences(g, spectral(), &stats);
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.pairs_without_evidence, 0u);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      if (i == j) {
        EXPECT_DOUBLE_EQ(closure(i, j), 0.0);
      } else {
        EXPECT_GT(closure(i, j), 0.0);
        EXPECT_NEAR(closure(i, j) + closure(j, i), 1.0, 1e-12);
      }
    }
  }
}

TEST(SpectralPropagation, CoversPairsBeyondBoundedHorizon) {
  // A 40-vertex chain: endpoints are 39 hops apart, far beyond the
  // bounded default horizon — spectral still orients them correctly.
  const auto g = smoothed_chain(40, 0.95);
  const Matrix closure = propagate_preferences(g, spectral(), nullptr);
  EXPECT_GT(closure(0, 39), 0.5);
  EXPECT_GT(closure(0, 20), 0.5);
  EXPECT_GT(closure(19, 39), 0.5);

  // The bounded default (L = 12) has no walk between the endpoints, so it
  // falls back to the uninformative prior there.
  PropagationConfig bounded;
  bounded.mode = PropagationMode::BoundedWalks;
  PropagationStats stats;
  const Matrix b = propagate_preferences(g, bounded, &stats);
  EXPECT_DOUBLE_EQ(b(0, 39), 0.5);
  EXPECT_GT(stats.pairs_without_evidence, 0u);
}

TEST(SpectralPropagation, AgreesWithBoundedOnDenseGraphs) {
  // On a dense smoothed graph both modes orient pairs the same way.
  Rng rng(5);
  PreferenceGraph g(12);
  for (VertexId i = 0; i < 12; ++i) {
    for (VertexId j = i + 1; j < 12; ++j) {
      const double w = (i < j) ? rng.uniform(0.6, 0.95)
                               : rng.uniform(0.05, 0.4);
      g.set_weight(i, j, w);
      g.set_weight(j, i, 1.0 - w);
    }
  }
  PropagationConfig bounded;
  bounded.mode = PropagationMode::BoundedWalks;
  const Matrix mb = propagate_preferences(g, bounded, nullptr);
  const Matrix ms = propagate_preferences(g, spectral(), nullptr);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      if (i == j) continue;
      EXPECT_EQ(mb(i, j) > 0.5, ms(i, j) > 0.5) << i << "," << j;
    }
  }
}

TEST(SpectralPropagation, EdgelessGraphFallsBackEverywhere) {
  PreferenceGraph g(5);
  PropagationStats stats;
  const Matrix closure = propagate_preferences(g, spectral(), &stats);
  EXPECT_EQ(stats.pairs_without_evidence, 10u);
  EXPECT_DOUBLE_EQ(closure(0, 4), 0.5);
}

TEST(SpectralPropagation, ClosureHamiltonianAlways) {
  Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = smoothed_chain(7, rng.uniform(0.55, 0.95));
    const Matrix closure = propagate_preferences(g, spectral(), nullptr);
    const PreferenceGraph cg = PreferenceGraph::from_matrix(closure);
    EXPECT_TRUE(cg.is_complete());
    EXPECT_TRUE(has_hamiltonian_path(cg));
  }
}

TEST(SpectralPropagation, SparseHybridMatchesDenseOracleBitwise) {
  // The fill threshold picks a *representation*, never a result: the
  // sparse kernels accumulate in the dense kernels' order, so all-dense
  // (0.0, the pinned oracle), the hybrid default, and all-sparse (1.0)
  // closures must agree bit for bit on the same graph.
  const auto g = smoothed_chain(33, 0.85);
  PropagationConfig dense_oracle = spectral();
  dense_oracle.fill_threshold = 0.0;
  PropagationStats dense_stats;
  const Matrix expected =
      propagate_preferences(g, dense_oracle, &dense_stats);
  EXPECT_EQ(dense_stats.densify_step, 1u);
  EXPECT_EQ(dense_stats.sparse_flops, 0u);
  EXPECT_DOUBLE_EQ(dense_stats.fill_ratio, 1.0);

  for (const double threshold : {0.10, 0.20, 1.0}) {
    PropagationConfig hybrid = spectral();
    hybrid.fill_threshold = threshold;
    PropagationStats stats;
    const Matrix closure = propagate_preferences(g, hybrid, &stats);
    EXPECT_EQ(closure, expected) << "threshold = " << threshold;
    EXPECT_GT(stats.sparse_flops, 0u) << "threshold = " << threshold;
    EXPECT_EQ(stats.doubling_steps, dense_stats.doubling_steps);
  }

  // All-sparse never densifies; the chain's closure fills up, so a small
  // threshold must densify at some step after the first.
  PropagationConfig all_sparse = spectral();
  all_sparse.fill_threshold = 1.0;
  PropagationStats sparse_stats;
  propagate_preferences(g, all_sparse, &sparse_stats);
  EXPECT_EQ(sparse_stats.densify_step, 0u);
  EXPECT_GT(sparse_stats.fill_ratio, 0.0);

  // The 33-chain starts at fill 64/1089 ~ 0.06, and one doubling puts the
  // state past 0.10 — so this threshold runs step 1 sparse and densifies
  // at a later step, exercising the mid-loop handoff.
  PropagationConfig tight = spectral();
  tight.fill_threshold = 0.10;
  PropagationStats tight_stats;
  propagate_preferences(g, tight, &tight_stats);
  EXPECT_GT(tight_stats.densify_step, 1u);
  EXPECT_GT(tight_stats.sparse_flops, 0u);
}

TEST(SpectralPropagation, HorizonTruncatesTheWalkSum) {
  // A 40-chain with horizon 4 covers only pairs within graph distance 4:
  // the endpoints (39 hops apart) fall back to the uninformative prior,
  // while near pairs are still oriented. The full limit covers everything.
  const auto g = smoothed_chain(40, 0.95);
  PropagationConfig truncated = spectral();
  truncated.spectral_horizon = 4;
  PropagationStats stats;
  const Matrix closure = propagate_preferences(g, truncated, &stats);
  EXPECT_DOUBLE_EQ(closure(0, 39), 0.5);
  EXPECT_GT(stats.pairs_without_evidence, 0u);
  EXPECT_GT(closure(0, 3), 0.5);
  EXPECT_NEAR(closure(2, 3) + closure(3, 2), 1.0, 1e-12);

  // Horizon >= n is the same sum the auto limit computes (n rounds up to
  // the same power of two), so the closures agree exactly.
  PropagationConfig wide = spectral();
  wide.spectral_horizon = 64;
  const Matrix full = propagate_preferences(g, spectral(), nullptr);
  EXPECT_EQ(propagate_preferences(g, wide, nullptr), full);
}

TEST(SpectralPropagation, RejectsInvalidHybridKnobs) {
  const auto g = smoothed_chain(4);
  PropagationConfig bad_threshold = spectral();
  bad_threshold.fill_threshold = 1.5;
  EXPECT_THROW(propagate_preferences(g, bad_threshold, nullptr), Error);
  PropagationConfig bad_horizon = spectral();
  bad_horizon.spectral_horizon = 1;
  EXPECT_THROW(propagate_preferences(g, bad_horizon, nullptr), Error);
}

TEST(SpectralPropagation, NoOverflowOnHeavyGraphs) {
  // Dense near-1 weights: unnormalized W^n would overflow by astronomical
  // margins; the renormalized doubling must stay finite.
  PreferenceGraph g(64);
  for (VertexId i = 0; i < 64; ++i) {
    for (VertexId j = 0; j < 64; ++j) {
      if (i != j) g.set_weight(i, j, i < j ? 0.99 : 0.01);
    }
  }
  const Matrix closure = propagate_preferences(g, spectral(), nullptr);
  for (const double v : closure.data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_GT(closure(0, 63), 0.5);
}

}  // namespace
}  // namespace crowdrank
