// Unit + property tests for TAPS (paper §V-D1) against exact oracles.
#include "core/taps.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/hamiltonian.hpp"
#include "graph/preference_graph.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

/// Random complete pair-normalized closure (what Step 3 produces).
Matrix random_closure(std::size_t n, Rng& rng) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double w = rng.uniform(0.05, 0.95);
      m(i, j) = w;
      m(j, i) = 1.0 - w;
    }
  }
  return m;
}

TEST(Taps, FindsObviousOptimum) {
  // Strong chain 0 -> 1 -> 2 -> 3.
  Matrix m(4, 4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) m(i, j) = 0.2;
    }
  }
  m(0, 1) = m(1, 2) = m(2, 3) = 0.9;
  const TapsResult r = taps_search(m);
  ASSERT_EQ(r.best_paths.size(), 1u);
  EXPECT_EQ(r.best_paths[0], (Path{0, 1, 2, 3}));
  EXPECT_NEAR(r.probability, 0.9 * 0.9 * 0.9, 1e-12);
}

TEST(Taps, MatchesHeldKarpOnRandomClosures) {
  Rng rng(21);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 5 + trial % 5;  // 5..9
    const Matrix m = random_closure(n, rng);
    const TapsResult taps = taps_search(m);
    const auto hk = max_probability_hamiltonian_path(m);
    ASSERT_TRUE(hk.has_value());
    EXPECT_NEAR(taps.log_probability,
                -path_log_cost(m, *hk), 1e-9)
        << "trial " << trial;
    // Every returned path must achieve the reported probability.
    for (const Path& p : taps.best_paths) {
      EXPECT_NEAR(std::log(path_probability(m, p)), taps.log_probability,
                  1e-9);
    }
  }
}

TEST(Taps, MatchesBruteForceEnumeration) {
  Rng rng(22);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 6;
    const Matrix m = random_closure(n, rng);
    const PreferenceGraph g = PreferenceGraph::from_matrix(m);
    double best = 0.0;
    for (const Path& p : enumerate_hamiltonian_paths(g)) {
      best = std::max(best, path_probability(m, p));
    }
    const TapsResult taps = taps_search(m);
    EXPECT_NEAR(taps.probability, best, 1e-12) << "trial " << trial;
  }
}

TEST(Taps, CollectsTiePaths) {
  // Symmetric 3-object closure with all weights 0.5: every one of the 6
  // permutations ties at probability 0.25.
  Matrix m(3, 3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) m(i, j) = 0.5;
    }
  }
  const TapsResult r = taps_search(m);
  EXPECT_EQ(r.best_paths.size(), 6u);
  EXPECT_NEAR(r.probability, 0.25, 1e-12);
}

TEST(Taps, EarlyTerminationBeatsFullEnumeration) {
  // With a sharply peaked optimum, TAPS should expand far fewer states
  // than the total path space n!/... — check expansions stay modest.
  Matrix m(8, 8, 0.0);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      if (i != j) m(i, j) = 0.05;
    }
  }
  for (std::size_t i = 0; i + 1 < 8; ++i) {
    m(i, i + 1) = 0.95;
    m(i + 1, i) = 0.05;
  }
  const TapsResult r = taps_search(m);
  ASSERT_EQ(r.best_paths[0], (Path{0, 1, 2, 3, 4, 5, 6, 7}));
  // 8! = 40320 full paths; the peaked instance needs a small fraction.
  EXPECT_LT(r.expansions, 5000u);
}

TEST(Taps, ExpansionCapThrows) {
  Rng rng(23);
  const Matrix m = random_closure(9, rng);
  TapsConfig config;
  config.max_expansions = 10;
  EXPECT_THROW(taps_search(m, config), Error);
}

TEST(Taps, SingleBestWithoutTieCollection) {
  Rng rng(24);
  const Matrix m = random_closure(6, rng);
  TapsConfig config;
  config.collect_ties = false;
  const TapsResult r = taps_search(m, config);
  EXPECT_EQ(r.best_paths.size(), 1u);
  const TapsResult full = taps_search(m);
  EXPECT_NEAR(r.log_probability, full.log_probability, 1e-12);
}

TEST(Taps, ValidatesInput) {
  Matrix rect(2, 3);
  EXPECT_THROW(taps_search(rect), Error);
  Matrix with_zero(3, 3, 0.0);
  with_zero(0, 1) = 0.5;  // incomplete closure
  EXPECT_THROW(taps_search(with_zero), Error);
}

TEST(Taps, TwoObjects) {
  Matrix m(2, 2, 0.0);
  m(0, 1) = 0.8;
  m(1, 0) = 0.2;
  const TapsResult r = taps_search(m);
  ASSERT_EQ(r.best_paths.size(), 1u);
  EXPECT_EQ(r.best_paths[0], (Path{0, 1}));
  EXPECT_NEAR(r.probability, 0.8, 1e-12);
}

}  // namespace
}  // namespace crowdrank
