// Unit tests for Step 1 — truth discovery (paper §V-A, Eqs. 4-5).
#include "core/truth_discovery.hpp"

#include <gtest/gtest.h>

#include "core/task_assignment.hpp"
#include "crowd/simulator.hpp"
#include "util/rng.hpp"

#include "util/error.hpp"

namespace crowdrank {
namespace {

Vote vote(WorkerId k, VertexId i, VertexId j, bool prefers_i) {
  return Vote{k, i, j, prefers_i};
}

TEST(TruthDiscovery, UnanimousVotesYieldOneEdge) {
  const VoteBatch votes{vote(0, 0, 1, true), vote(1, 0, 1, true),
                        vote(2, 0, 1, true)};
  const auto result = discover_truth(votes, 2, 3);
  ASSERT_EQ(result.truths.size(), 1u);
  EXPECT_EQ(result.truths[0].task, (Edge{0, 1}));
  EXPECT_DOUBLE_EQ(result.truths[0].x, 1.0);
  EXPECT_EQ(result.truths[0].vote_count, 3u);
}

TEST(TruthDiscovery, CanonicalizationFlipsReversedVotes) {
  // "prefers_i" on (1, 0) means object 1 preferred: x for canonical (0,1)
  // must be 0.
  const VoteBatch votes{vote(0, 1, 0, true), vote(1, 1, 0, true)};
  const auto result = discover_truth(votes, 2, 2);
  ASSERT_EQ(result.truths.size(), 1u);
  EXPECT_EQ(result.truths[0].task, (Edge{0, 1}));
  EXPECT_DOUBLE_EQ(result.truths[0].x, 0.0);
}

TEST(TruthDiscovery, ReliableWorkersDominateConflicts) {
  // Workers 0-2 agree on many tasks; worker 3 contradicts them everywhere.
  VoteBatch votes;
  for (VertexId i = 0; i < 8; ++i) {
    for (WorkerId k = 0; k < 3; ++k) {
      votes.push_back(vote(k, i, i + 1, true));
    }
    votes.push_back(vote(3, i, i + 1, false));
  }
  const auto result = discover_truth(votes, 9, 4);
  // The consistent majority wins; the dissenter gets a low Eq.-5 weight
  // and a calibrated quality well below the majority's.
  for (const auto& t : result.truths) {
    EXPECT_GT(t.x, 0.9);
  }
  EXPECT_LT(result.worker_weight[3], 0.2);
  EXPECT_LT(result.worker_quality[3], result.worker_quality[0] - 0.3);
  EXPECT_GT(result.worker_quality[0], 0.9);
}

TEST(TruthDiscovery, WeightsMaxNormalizedQualitiesCalibrated) {
  VoteBatch votes;
  for (VertexId i = 0; i < 5; ++i) {
    votes.push_back(vote(0, i, i + 1, true));
    votes.push_back(vote(1, i, i + 1, i % 2 == 0));
    votes.push_back(vote(2, i, i + 1, true));  // anchors the majority
  }
  const auto result = discover_truth(votes, 6, 3);
  // Eq.-5 iteration weights are max-normalized to [0, 1] with max 1.
  double max_w = 0.0;
  for (const double w : result.worker_weight) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
    max_w = std::max(max_w, w);
  }
  EXPECT_DOUBLE_EQ(max_w, 1.0);
  // Calibrated qualities are probabilities: q = exp(-rms deviation).
  for (const double q : result.worker_quality) {
    EXPECT_GT(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
  // The consistent worker outranks the erratic one on both scales.
  EXPECT_GT(result.worker_quality[0], result.worker_quality[1]);
  EXPECT_GT(result.worker_weight[0], result.worker_weight[1]);
}

TEST(TruthDiscovery, ConvergesQuicklyOnCleanData) {
  // Paper: "convergence within 10 iterations for most of the testing
  // cases".
  VoteBatch votes;
  for (VertexId i = 0; i < 20; ++i) {
    for (WorkerId k = 0; k < 5; ++k) {
      votes.push_back(vote(k, i, i + 1, true));
    }
  }
  const auto result = discover_truth(votes, 21, 5);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 10u);
}

TEST(TruthDiscovery, HonorsIterationCap) {
  VoteBatch votes{vote(0, 0, 1, true), vote(1, 0, 1, false)};
  TruthDiscoveryConfig config;
  config.max_iterations = 1;
  config.tolerance = 1e-15;
  const auto result = discover_truth(votes, 2, 2, config);
  EXPECT_EQ(result.iterations, 1u);
}

TEST(TruthDiscovery, SplitVoteGivesIntermediateTruth) {
  const VoteBatch votes{vote(0, 0, 1, true), vote(1, 0, 1, false)};
  const auto result = discover_truth(votes, 2, 2);
  EXPECT_GT(result.truths[0].x, 0.0);
  EXPECT_LT(result.truths[0].x, 1.0);
}

TEST(TruthDiscovery, WorkersWithoutVotesKeepNeutralQuality) {
  const VoteBatch votes{vote(0, 0, 1, true)};
  const auto result = discover_truth(votes, 2, 3);
  EXPECT_DOUBLE_EQ(result.worker_quality[1], 1.0);
  EXPECT_DOUBLE_EQ(result.worker_quality[2], 1.0);
}

TEST(TruthDiscovery, ValidatesInputs) {
  EXPECT_THROW(discover_truth({}, 2, 1), Error);
  EXPECT_THROW(discover_truth({vote(0, 0, 5, true)}, 2, 1), Error);
  EXPECT_THROW(discover_truth({vote(5, 0, 1, true)}, 2, 1), Error);
  EXPECT_THROW(discover_truth({vote(0, 1, 1, true)}, 2, 1), Error);
  TruthDiscoveryConfig bad;
  bad.max_iterations = 0;
  EXPECT_THROW(discover_truth({vote(0, 0, 1, true)}, 2, 1, bad), Error);
  bad = {};
  bad.alpha = 1.5;
  EXPECT_THROW(discover_truth({vote(0, 0, 1, true)}, 2, 1, bad), Error);
}

TEST(TruthDiscovery, ToPreferenceGraphBuildsBothDirections) {
  const VoteBatch votes{vote(0, 0, 1, true), vote(1, 0, 1, true),
                        vote(2, 0, 1, false), vote(0, 1, 2, true),
                        vote(1, 1, 2, true), vote(2, 1, 2, true)};
  const auto result = discover_truth(votes, 3, 3);
  const PreferenceGraph g = result.to_preference_graph(3);
  // Task (0,1) split: both directions present, weights sum to 1.
  EXPECT_GT(g.weight(0, 1), 0.0);
  EXPECT_GT(g.weight(1, 0), 0.0);
  EXPECT_NEAR(g.weight(0, 1) + g.weight(1, 0), 1.0, 1e-12);
  // Task (1,2) unanimous: a 1-edge, reverse absent.
  EXPECT_DOUBLE_EQ(g.weight(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(g.weight(2, 1), 0.0);
}

TEST(TruthDiscovery, QualityWeightingOffIsPlainAveraging) {
  // Reliable pair vs noisy trio on a contested task (same fixture as the
  // BeatsMajorityVote test below): with weighting off, the estimate must
  // equal the raw vote average.
  VoteBatch votes;
  for (VertexId i = 0; i < 12; ++i) {
    votes.push_back(vote(0, i, i + 1, true));
    votes.push_back(vote(1, i, i + 1, true));
    votes.push_back(vote(2, i, i + 1, i % 2 == 0));
    votes.push_back(vote(3, i, i + 1, i % 3 == 0));
    votes.push_back(vote(4, i, i + 1, i % 5 == 0));
  }
  votes.push_back(vote(0, 20, 21, true));
  votes.push_back(vote(1, 20, 21, true));
  votes.push_back(vote(2, 20, 21, false));
  votes.push_back(vote(3, 20, 21, false));
  votes.push_back(vote(4, 20, 21, false));

  TruthDiscoveryConfig config;
  config.use_quality_weighting = false;
  const auto unweighted = discover_truth(votes, 22, 5, config);
  EXPECT_EQ(unweighted.iterations, 1u);
  EXPECT_TRUE(unweighted.converged);
  for (const auto& t : unweighted.truths) {
    if (t.task == Edge{20, 21}) {
      EXPECT_DOUBLE_EQ(t.x, 0.4);  // 2 of 5 votes
    }
  }
  // Calibrated qualities are still produced for Step 2.
  for (const double q : unweighted.worker_quality) {
    EXPECT_GT(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
  // And the weighted variant moves the contested estimate upward.
  const auto weighted = discover_truth(votes, 22, 5);
  for (const auto& t : weighted.truths) {
    if (t.task == Edge{20, 21}) {
      EXPECT_GT(t.x, 0.4);
    }
  }
}

TEST(MajorityVoteTruth, SimpleAverages) {
  const VoteBatch votes{vote(0, 0, 1, true), vote(1, 0, 1, true),
                        vote(2, 0, 1, false), vote(3, 0, 1, false)};
  const auto truths = majority_vote_truth(votes, 2);
  ASSERT_EQ(truths.size(), 1u);
  EXPECT_DOUBLE_EQ(truths[0].x, 0.5);
}

TEST(TruthDiscovery, CalibratedQualityTracksTrueWorkerNoise) {
  // Statistical consistency: simulate workers with known error std-devs
  // and check the estimated calibrated quality is rank-correlated with
  // the true noise (better worker -> higher quality).
  Rng rng(4242);
  const std::size_t n = 30;
  const std::size_t m = 10;
  auto perm = rng.permutation(n);
  const Ranking truth(std::vector<VertexId>(perm.begin(), perm.end()));
  std::vector<WorkerProfile> workers;
  for (WorkerId k = 0; k < m; ++k) {
    // sigma ramps 0.0 .. 0.9: worker 0 is near-perfect, worker 9 awful.
    workers.push_back(WorkerProfile{k, 0.1 * static_cast<double>(k)});
  }
  const SimulatedCrowd crowd(truth, workers);
  const auto ta = generate_task_assignment(n, 300, rng);
  std::vector<Edge> tasks(ta.graph.edges().begin(), ta.graph.edges().end());
  const HitAssignment assignment(tasks, HitConfig{5, 6}, m, rng);
  const VoteBatch votes = crowd.collect(assignment, rng);

  const auto result = discover_truth(votes, n, m);
  // Spearman-style check: count pairwise inversions between true sigma
  // order and estimated quality order.
  std::size_t concordant = 0;
  std::size_t total = 0;
  for (WorkerId a = 0; a < m; ++a) {
    for (WorkerId b = a + 1; b < m; ++b) {
      ++total;  // a has lower sigma (better) than b by construction
      if (result.worker_quality[a] > result.worker_quality[b]) {
        ++concordant;
      }
    }
  }
  EXPECT_GT(static_cast<double>(concordant) / static_cast<double>(total),
            0.75);
  // The extremes must be clearly separated.
  EXPECT_GT(result.worker_quality[0], result.worker_quality[9] + 0.1);
}

TEST(TruthDiscovery, BeatsMajorityVoteWithSkewedQuality) {
  // 2 reliable workers vs 3 random-ish workers that happen to collude on a
  // few pairs: truth discovery should follow the reliable pair on the
  // contested tasks once their quality is established.
  VoteBatch votes;
  // 12 calibration tasks where the reliable workers (0,1) are consistent
  // and the noisy trio (2,3,4) is self-contradictory across tasks.
  for (VertexId i = 0; i < 12; ++i) {
    votes.push_back(vote(0, i, i + 1, true));
    votes.push_back(vote(1, i, i + 1, true));
    votes.push_back(vote(2, i, i + 1, i % 2 == 0));
    votes.push_back(vote(3, i, i + 1, i % 3 == 0));
    votes.push_back(vote(4, i, i + 1, i % 5 == 0));
  }
  // Contested task: reliable pair says true, noisy trio says false.
  votes.push_back(vote(0, 20, 21, true));
  votes.push_back(vote(1, 20, 21, true));
  votes.push_back(vote(2, 20, 21, false));
  votes.push_back(vote(3, 20, 21, false));
  votes.push_back(vote(4, 20, 21, false));

  const auto td = discover_truth(votes, 22, 5);
  const auto mv = majority_vote_truth(votes, 22);
  double td_x = -1.0;
  double mv_x = -1.0;
  for (const auto& t : td.truths) {
    if (t.task == Edge{20, 21}) td_x = t.x;
  }
  for (const auto& t : mv) {
    if (t.task == Edge{20, 21}) mv_x = t.x;
  }
  EXPECT_LT(mv_x, 0.5);  // raw majority says false
  EXPECT_GT(td_x, mv_x);  // quality-weighting pulls toward the reliable pair
}

}  // namespace
}  // namespace crowdrank
