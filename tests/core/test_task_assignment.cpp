// Unit + property tests for task assignment (paper §IV, Algorithm 1).
#include "core/task_assignment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "graph/hamiltonian.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace crowdrank {
namespace {

TEST(IoNodeProbability, MatchesEquationTwo) {
  // Example 4.1: degree 2 -> 2/9, degree 1 -> 2/3.
  EXPECT_NEAR(io_node_probability(2), 2.0 / 9.0, 1e-15);
  EXPECT_NEAR(io_node_probability(1), 2.0 / 3.0, 1e-15);
  EXPECT_NEAR(io_node_probability(3), 2.0 / 27.0, 1e-15);
  EXPECT_NEAR(io_node_probability(0), 2.0, 1e-15);  // degenerate d=0
}

TEST(HpLikelihood, FormulaAgainstHandComputation) {
  // n = 3, dmin = dmax = 2:
  // (1 - 2/9)^3 * [1 + 6/7 + 3/49] = (7/9)^3 * (1 + 6/7 + 3/49).
  const double expected =
      std::pow(7.0 / 9.0, 3) * (1.0 + 6.0 / 7.0 + 3.0 / 49.0);
  EXPECT_NEAR(hp_likelihood_lower_bound(3, 2, 2), expected, 1e-12);
}

TEST(HpLikelihood, ImprovesWithDegreeRegularity) {
  // Fixing the degree sum, the bound is best when dmin = dmax (Thm 4.4's
  // maximization argument).
  const double regular = hp_likelihood_lower_bound(10, 4, 4);
  const double skewed = hp_likelihood_lower_bound(10, 2, 6);
  EXPECT_GT(regular, skewed);
}

TEST(HpLikelihood, IncreasesWithMinDegree) {
  EXPECT_GT(hp_likelihood_lower_bound(20, 5, 5),
            hp_likelihood_lower_bound(20, 3, 3));
}

TEST(HpLikelihood, Validates) {
  EXPECT_THROW(hp_likelihood_lower_bound(1, 1, 1), Error);
  EXPECT_THROW(hp_likelihood_lower_bound(5, 0, 2), Error);
  EXPECT_THROW(hp_likelihood_lower_bound(5, 3, 2), Error);
}

TEST(TaskAssignment, ExactEdgeCountBudgetConscious) {
  Rng rng(1);
  for (const std::size_t l : {9u, 15u, 30u, 45u}) {
    const auto a = generate_task_assignment(10, l, rng);
    EXPECT_EQ(a.graph.edge_count(), l);
    EXPECT_EQ(a.stats.edge_count, l);
  }
}

TEST(TaskAssignment, GraphIsConnected) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = generate_task_assignment(30, 60, rng);
    EXPECT_TRUE(a.graph.is_connected());
  }
}

TEST(TaskAssignment, FairnessNearRegularDegrees) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = generate_task_assignment(20, 50, rng);
    // 2l/n = 5 exactly: strictly regular is achievable.
    EXPECT_LE(a.stats.max_degree - a.stats.min_degree, 1u);
    EXPECT_TRUE(a.stats.fair);
  }
}

TEST(TaskAssignment, StrictRegularityWhenDivisible) {
  Rng rng(4);
  int strictly_regular = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = generate_task_assignment(12, 18, rng);  // 2l/n = 3
    if (a.stats.strictly_regular) ++strictly_regular;
    EXPECT_LE(a.stats.max_degree - a.stats.min_degree, 1u);
  }
  // The generator should usually hit exact regularity when possible.
  EXPECT_GE(strictly_regular, 7);
}

TEST(TaskAssignment, SparseBudgetIsHamiltonianPath) {
  Rng rng(5);
  const auto a = generate_task_assignment(15, 14, rng);  // l = n-1
  EXPECT_EQ(a.graph.edge_count(), 14u);
  EXPECT_TRUE(a.graph.is_connected());
  EXPECT_TRUE(has_hamiltonian_path(a.graph));
  EXPECT_EQ(a.graph.min_degree(), 1u);
  EXPECT_EQ(a.graph.max_degree(), 2u);
}

TEST(TaskAssignment, FullBudgetIsCompleteGraph) {
  Rng rng(6);
  const auto a = generate_task_assignment(8, math::pair_count(8), rng);
  EXPECT_TRUE(a.stats.strictly_regular);
  EXPECT_EQ(a.stats.min_degree, 7u);
}

TEST(TaskAssignment, SeedHpSurvivesSoTaskGraphHasHp) {
  // Thm 4.2 prerequisite: the generated task graph must itself contain an
  // HP. The construction seeds one and never removes its edges.
  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    const auto a = generate_task_assignment(12, 20, rng);
    EXPECT_TRUE(has_hamiltonian_path(a.graph)) << "trial " << trial;
  }
}

TEST(TaskAssignment, ValidatesBudgetBounds) {
  Rng rng(8);
  EXPECT_THROW(generate_task_assignment(10, 8, rng), Error);   // < n-1
  EXPECT_THROW(generate_task_assignment(10, 46, rng), Error);  // > C(n,2)
  EXPECT_THROW(generate_task_assignment(1, 1, rng), Error);
}

TEST(TaskAssignment, StatsReportPrLowerBound) {
  Rng rng(9);
  const auto a = generate_task_assignment(20, 50, rng);
  const double expected = hp_likelihood_lower_bound(20, a.stats.min_degree,
                                                    a.stats.max_degree);
  EXPECT_DOUBLE_EQ(a.stats.hp_likelihood_lower_bound, expected);
}

class TaskAssignmentSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(TaskAssignmentSweep, InvariantsAcrossScales) {
  const auto [n, ratio] = GetParam();
  const std::size_t all = math::pair_count(n);
  const auto l = std::max<std::size_t>(
      n - 1, static_cast<std::size_t>(ratio * static_cast<double>(all)));
  Rng rng(10'000 + n);
  const auto a = generate_task_assignment(n, l, rng);
  EXPECT_EQ(a.graph.edge_count(), l);
  EXPECT_TRUE(a.graph.is_connected());
  EXPECT_LE(a.stats.max_degree - a.stats.min_degree, 1u);
  // Degree sum identity.
  std::size_t degree_sum = 0;
  for (VertexId v = 0; v < n; ++v) degree_sum += a.graph.degree(v);
  EXPECT_EQ(degree_sum, 2 * l);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TaskAssignmentSweep,
    ::testing::Combine(::testing::Values(10, 25, 50, 100, 200),
                       ::testing::Values(0.05, 0.1, 0.3, 0.5, 0.9)));

TEST(RandomAssignment, EdgeCountButNoFairnessGuarantee) {
  Rng rng(11);
  const auto a = generate_random_assignment(30, 60, rng);
  EXPECT_EQ(a.graph.edge_count(), 60u);
  // Sampled uniformly: edges must be distinct (guaranteed by construction).
  std::set<Edge> unique(a.graph.edges().begin(), a.graph.edges().end());
  EXPECT_EQ(unique.size(), 60u);
}

TEST(RandomAssignment, UnrankingCoversAllPairs) {
  Rng rng(12);
  const std::size_t n = 7;
  const auto a = generate_random_assignment(n, math::pair_count(n), rng);
  EXPECT_EQ(a.graph.edge_count(), math::pair_count(n));
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      EXPECT_TRUE(a.graph.has_edge(i, j));
    }
  }
}

TEST(AllPairsAssignment, IsCompleteAndRegular) {
  const auto a = generate_all_pairs_assignment(6);
  EXPECT_EQ(a.graph.edge_count(), 15u);
  EXPECT_TRUE(a.stats.strictly_regular);
  EXPECT_EQ(a.stats.min_degree, 5u);
}

TEST(TaskAssignment, FairnessReducesIoProbabilitySpread) {
  // The fair generator should give every vertex the same Eq.-2 in/out-node
  // probability up to one degree unit; the random baseline typically not.
  Rng rng(13);
  const auto fair = generate_task_assignment(40, 80, rng);
  const auto random = generate_random_assignment(40, 80, rng);
  const auto spread = [](const TaskGraph& g) {
    double lo = 2.0;
    double hi = 0.0;
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      const double p = io_node_probability(g.degree(v));
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
    return hi - lo;
  };
  EXPECT_LE(spread(fair.graph), spread(random.graph) + 1e-12);
}

}  // namespace
}  // namespace crowdrank
