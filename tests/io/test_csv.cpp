// Unit tests for the CSV parser/serializer.
#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"

#include "util/error.hpp"

namespace crowdrank::io {
namespace {

TEST(Csv, ParsesSimpleRows) {
  const auto doc = parse_csv("a,b,c\n1,2,3\n");
  ASSERT_EQ(doc.row_count(), 2u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(doc.rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Csv, HandlesMissingTrailingNewline) {
  const auto doc = parse_csv("x,y\n1,2");
  ASSERT_EQ(doc.row_count(), 2u);
  EXPECT_EQ(doc.rows[1][1], "2");
}

TEST(Csv, HandlesCrLf) {
  const auto doc = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(doc.row_count(), 2u);
  EXPECT_EQ(doc.rows[1][0], "1");
}

TEST(Csv, EmptyDocument) {
  EXPECT_TRUE(parse_csv("").empty());
  EXPECT_TRUE(parse_csv("\n\n").empty());
}

TEST(Csv, EmptyCellsPreserved) {
  const auto doc = parse_csv("a,,c\n,,\n");
  ASSERT_EQ(doc.row_count(), 2u);
  EXPECT_EQ(doc.rows[0][1], "");
  EXPECT_EQ(doc.rows[1].size(), 3u);
}

TEST(Csv, QuotedFieldsWithCommasAndNewlines) {
  const auto doc = parse_csv("\"a,b\",\"line1\nline2\"\n");
  ASSERT_EQ(doc.row_count(), 1u);
  EXPECT_EQ(doc.rows[0][0], "a,b");
  EXPECT_EQ(doc.rows[0][1], "line1\nline2");
}

TEST(Csv, EscapedQuotes) {
  const auto doc = parse_csv("\"he said \"\"hi\"\"\"\n");
  ASSERT_EQ(doc.row_count(), 1u);
  EXPECT_EQ(doc.rows[0][0], "he said \"hi\"");
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("\"open"), Error);
}

TEST(Csv, WriteRoundTrip) {
  const std::vector<std::vector<std::string>> rows{
      {"plain", "with,comma"},
      {"with\"quote", "multi\nline"},
  };
  std::ostringstream out;
  write_csv(out, rows);
  const auto doc = parse_csv(out.str());
  ASSERT_EQ(doc.row_count(), 2u);
  EXPECT_EQ(doc.rows[0][1], "with,comma");
  EXPECT_EQ(doc.rows[1][0], "with\"quote");
  EXPECT_EQ(doc.rows[1][1], "multi\nline");
}

TEST(Csv, ReadFromStream) {
  std::istringstream in("k,v\n1,2\n");
  const auto doc = read_csv(in);
  EXPECT_EQ(doc.row_count(), 2u);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(load_csv_file("/nonexistent/dir/file.csv"), Error);
}

TEST(Csv, FuzzedRoundTripsAreLossless) {
  // Random cells drawn from a nasty alphabet (quotes, commas, newlines,
  // CR, unicode bytes) must survive write -> parse exactly.
  Rng rng(1234);
  const std::string alphabet = "ab,\"\n\r;\t 'é€";
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::vector<std::string>> rows;
    const std::size_t num_rows = 1 + rng.uniform_index(4);
    const std::size_t num_cols = 1 + rng.uniform_index(4);
    for (std::size_t r = 0; r < num_rows; ++r) {
      std::vector<std::string> row;
      for (std::size_t c = 0; c < num_cols; ++c) {
        std::string cell;
        const std::size_t len = rng.uniform_index(8);
        for (std::size_t k = 0; k < len; ++k) {
          cell += alphabet[rng.uniform_index(alphabet.size())];
        }
        row.push_back(std::move(cell));
      }
      rows.push_back(std::move(row));
    }
    // A row whose every cell is empty serializes to a blank line, which
    // parse_csv (correctly) treats as no row; skip those trials.
    bool has_blank_row = false;
    for (const auto& row : rows) {
      bool all_empty = true;
      for (const auto& cell : row) {
        all_empty = all_empty && cell.empty();
      }
      has_blank_row |= all_empty && row.size() == 1;
    }
    if (has_blank_row) continue;

    std::ostringstream out;
    write_csv(out, rows);
    const auto parsed = parse_csv(out.str());
    ASSERT_EQ(parsed.rows, rows) << "trial " << trial << " text:\n"
                                 << out.str();
  }
}

TEST(Csv, FileRoundTrip) {
  const std::string path = "/tmp/crowdrank_csv_test.csv";
  save_csv_file(path, {{"h1", "h2"}, {"a", "b"}});
  const auto doc = load_csv_file(path);
  ASSERT_EQ(doc.row_count(), 2u);
  EXPECT_EQ(doc.rows[1][0], "a");
}

}  // namespace
}  // namespace crowdrank::io
