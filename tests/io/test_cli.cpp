// End-to-end tests of the CLI subcommands through run_cli().
#include "io/commands.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/records.hpp"
#include "metrics/kendall.hpp"

namespace crowdrank::io {
namespace {

namespace fs = std::filesystem;

/// Scratch dir per test, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("crowdrank_cli_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

int run(std::initializer_list<std::string> args, std::string* out_text,
        std::string* err_text = nullptr) {
  std::vector<std::string> argv{"crowdrank"};
  argv.insert(argv.end(), args.begin(), args.end());
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(argv, out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return code;
}

TEST(Cli, HelpAndUnknownCommand) {
  std::string out;
  std::string err;
  EXPECT_EQ(run({"help"}, &out, &err), 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);
  EXPECT_EQ(run({"frobnicate"}, &out, &err), 1);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
  std::ostringstream so;
  std::ostringstream se;
  EXPECT_EQ(run_cli({"crowdrank"}, so, se), 1);  // no subcommand
}

TEST(Cli, AssignWritesTasks) {
  const TempDir dir;
  std::string out;
  const int code = run({"assign", "--objects", "12", "--ratio", "0.5",
                        "--tasks-out", dir.file("tasks.csv")},
                       &out);
  EXPECT_EQ(code, 0);
  const auto tasks = load_tasks(dir.file("tasks.csv"));
  EXPECT_EQ(tasks.size(), 33u);  // 0.5 * C(12,2)
  EXPECT_NE(out.find("comparisons 33"), std::string::npos);
}

TEST(Cli, AssignAcceptsDollarBudget) {
  const TempDir dir;
  std::string out;
  // $3 at $0.025 x 3 workers buys 40 comparisons.
  const int code = run({"assign", "--objects", "12", "--budget", "3",
                        "--tasks-out", dir.file("tasks.csv")},
                       &out);
  EXPECT_EQ(code, 0);
  EXPECT_EQ(load_tasks(dir.file("tasks.csv")).size(), 40u);
}

TEST(Cli, SimulateInferEvalPipeline) {
  const TempDir dir;
  std::string out;
  ASSERT_EQ(run({"simulate", "--objects", "25", "--ratio", "0.4", "--seed",
                 "11", "--quality", "high", "--votes-out",
                 dir.file("votes.csv"), "--truth-out",
                 dir.file("truth.csv")},
                &out),
            0);
  ASSERT_EQ(run({"infer", "--votes", dir.file("votes.csv"),
                 "--ranking-out", dir.file("ranking.csv"), "--seed", "2"},
                &out),
            0);
  EXPECT_NE(out.find("inferred full ranking of 25 objects"),
            std::string::npos);

  std::string eval_out;
  ASSERT_EQ(run({"eval", "--reference", dir.file("truth.csv"), "--ranking",
                 dir.file("ranking.csv"), "--k", "5"},
                &eval_out),
            0);
  EXPECT_NE(eval_out.find("accuracy"), std::string::npos);
  EXPECT_NE(eval_out.find("top-5"), std::string::npos);

  // The written artifacts must agree with in-process evaluation.
  const Ranking truth = load_ranking(dir.file("truth.csv"));
  const Ranking ranking = load_ranking(dir.file("ranking.csv"));
  EXPECT_GT(ranking_accuracy(truth, ranking), 0.85);
}

TEST(Cli, InferSearchMethodsAgreeOnExactInstances) {
  const TempDir dir;
  std::string out;
  ASSERT_EQ(run({"simulate", "--objects", "9", "--ratio", "1.0", "--seed",
                 "3", "--votes-out", dir.file("votes.csv"), "--truth-out",
                 dir.file("truth.csv")},
                &out),
            0);
  ASSERT_EQ(run({"infer", "--votes", dir.file("votes.csv"), "--search",
                 "taps", "--ranking-out", dir.file("taps.csv")},
                &out),
            0);
  ASSERT_EQ(run({"infer", "--votes", dir.file("votes.csv"), "--search",
                 "heldkarp", "--ranking-out", dir.file("hk.csv")},
                &out),
            0);
  const Ranking taps = load_ranking(dir.file("taps.csv"));
  const Ranking hk = load_ranking(dir.file("hk.csv"));
  // Both exact searches must report equally probable optima; on ties they
  // may differ as rankings but usually coincide — compare agreement.
  EXPECT_GT(ranking_accuracy(taps, hk), 0.9);
}

TEST(Cli, PlanReportsAPlanOrHonestFailure) {
  std::string out;
  const int code =
      run({"plan", "--objects", "20", "--target", "0.8", "--quality",
           "high", "--seed", "4"},
          &out);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("cheapest plan"), std::string::npos);

  std::string fail_out;
  const int fail_code =
      run({"plan", "--objects", "20", "--target", "0.999", "--quality",
           "low", "--seed", "4"},
          &fail_out);
  EXPECT_EQ(fail_code, 1);
  EXPECT_NE(fail_out.find("no budget"), std::string::npos);
}

TEST(Cli, DiagnoseReportsAndSetsExitCode) {
  const TempDir dir;
  std::string out;
  ASSERT_EQ(run({"simulate", "--objects", "15", "--ratio", "0.5", "--seed",
                 "21", "--votes-out", dir.file("votes.csv")},
                &out),
            0);
  std::string report;
  EXPECT_EQ(run({"diagnose", "--votes", dir.file("votes.csv")}, &report), 0);
  EXPECT_NE(report.find("RANKABLE"), std::string::npos);
  EXPECT_NE(report.find("coverage"), std::string::npos);

  // A batch with an uncovered object exits 2.
  save_votes(dir.file("sparse.csv"), {Vote{0, 0, 1, true}});
  std::string sparse_report;
  EXPECT_EQ(run({"diagnose", "--votes", dir.file("sparse.csv"),
                 "--objects", "4"},
                &sparse_report),
            2);
  EXPECT_NE(sparse_report.find("NOT CLEANLY RANKABLE"), std::string::npos);
}

TEST(Cli, ErrorsAreReportedNotThrown) {
  std::string out;
  std::string err;
  EXPECT_EQ(run({"infer", "--votes", "/nonexistent/votes.csv"}, &out, &err),
            1);
  EXPECT_NE(err.find("error:"), std::string::npos);
  EXPECT_EQ(run({"assign"}, &out, &err), 1);  // missing --objects
  EXPECT_EQ(run({"simulate", "--objects", "10", "--quality", "bogus"},
                &out, &err),
            1);
  EXPECT_NE(err.find("quality"), std::string::npos);
}

TEST(Cli, ExactSearchSizeLimitReportedGracefully) {
  // Held-Karp is capped at n <= 20; asking for it on a larger instance
  // must produce a readable error, not a crash.
  const TempDir dir;
  std::string out;
  ASSERT_EQ(run({"simulate", "--objects", "25", "--ratio", "1.0",
                 "--votes-out", dir.file("votes.csv")},
                &out),
            0);
  std::string err;
  EXPECT_EQ(run({"infer", "--votes", dir.file("votes.csv"), "--search",
                 "heldkarp"},
                &out, &err),
            1);
  EXPECT_NE(err.find("error:"), std::string::npos);
}

TEST(Cli, EvalRejectsMismatchedSizes) {
  const TempDir dir;
  save_ranking(dir.file("a.csv"), Ranking::identity(4));
  save_ranking(dir.file("b.csv"), Ranking::identity(5));
  std::string out;
  std::string err;
  EXPECT_EQ(run({"eval", "--reference", dir.file("a.csv"), "--ranking",
                 dir.file("b.csv")},
                &out, &err),
            1);
  EXPECT_NE(err.find("different object counts"), std::string::npos);
}

TEST(Cli, InferReportsBoundaryConfidence) {
  const TempDir dir;
  std::string out;
  ASSERT_EQ(run({"simulate", "--objects", "12", "--ratio", "0.6",
                 "--votes-out", dir.file("votes.csv")},
                &out),
            0);
  ASSERT_EQ(run({"infer", "--votes", dir.file("votes.csv")}, &out), 0);
  EXPECT_NE(out.find("boundary confidence"), std::string::npos);
  EXPECT_NE(out.find("tie threshold"), std::string::npos);
}

TEST(Cli, VersionPrintsBuildInfo) {
  for (const char* spelling : {"version", "--version"}) {
    std::string out;
    EXPECT_EQ(run({spelling}, &out), 0) << spelling;
    EXPECT_NE(out.find("crowdrank "), std::string::npos) << out;
    EXPECT_NE(out.find("compiler"), std::string::npos) << out;
    EXPECT_NE(out.find("threads"), std::string::npos) << out;
  }
}

TEST(Cli, InferWritesTraceAndMetricsFiles) {
  const TempDir dir;
  std::string out;
  ASSERT_EQ(run({"simulate", "--objects", "15", "--ratio", "0.4", "--seed",
                 "5", "--votes-out", dir.file("votes.csv")},
                &out),
            0);
  ASSERT_EQ(run({"infer", "--votes", dir.file("votes.csv"), "--seed", "2",
                 "--trace", dir.file("trace.json"), "--metrics",
                 dir.file("report.json")},
                &out),
            0);
  EXPECT_NE(out.find("wrote " + dir.file("trace.json")), std::string::npos);
  EXPECT_NE(out.find("wrote " + dir.file("report.json")),
            std::string::npos);

  // Spot-check content: the Chrome trace names the pipeline steps, the
  // report carries build info and per-stage timings.
  std::ifstream trace_in(dir.file("trace.json"));
  std::stringstream trace_text;
  trace_text << trace_in.rdbuf();
  EXPECT_NE(trace_text.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_text.str().find("step1_truth_discovery"),
            std::string::npos);
  EXPECT_NE(trace_text.str().find("step4_find_best_ranking"),
            std::string::npos);

  std::ifstream report_in(dir.file("report.json"));
  std::stringstream report_text;
  report_text << report_in.rdbuf();
  EXPECT_NE(report_text.str().find("\"build\""), std::string::npos);
  EXPECT_NE(report_text.str().find("\"phases_ms\""), std::string::npos);
  EXPECT_NE(report_text.str().find("truth_discovery.delta"),
            std::string::npos);
}

TEST(Cli, TracingDoesNotChangeTheInferredRanking) {
  const TempDir dir;
  std::string out;
  ASSERT_EQ(run({"simulate", "--objects", "15", "--ratio", "0.4", "--seed",
                 "9", "--votes-out", dir.file("votes.csv")},
                &out),
            0);
  ASSERT_EQ(run({"infer", "--votes", dir.file("votes.csv"), "--seed", "3",
                 "--ranking-out", dir.file("plain.csv")},
                &out),
            0);
  ASSERT_EQ(run({"infer", "--votes", dir.file("votes.csv"), "--seed", "3",
                 "--ranking-out", dir.file("traced.csv"), "--trace",
                 dir.file("trace.json"), "--metrics",
                 dir.file("report.json")},
                &out),
            0);
  const Ranking plain = load_ranking(dir.file("plain.csv"));
  const Ranking traced = load_ranking(dir.file("traced.csv"));
  const std::vector<VertexId> plain_order(plain.order().begin(),
                                          plain.order().end());
  const std::vector<VertexId> traced_order(traced.order().begin(),
                                           traced.order().end());
  EXPECT_EQ(plain_order, traced_order);
}

TEST(Cli, CanonicalAndAliasSpellingsAgree) {
  // Canonical flags follow the api:: field names; historical spellings
  // stay as hidden aliases and must behave identically.
  std::string alias_out;
  ASSERT_EQ(run({"assign", "--objects", "12", "--ratio", "0.5", "--seed",
                 "4"},
                &alias_out),
            0);
  std::string canonical_out;
  ASSERT_EQ(run({"assign", "--object-count", "12", "--selection-ratio",
                 "0.5", "--seed", "4"},
                &canonical_out),
            0);
  EXPECT_EQ(alias_out, canonical_out);

  // Mixing an alias with its canonical spelling is ambiguous.
  std::string err;
  EXPECT_EQ(run({"assign", "--objects", "12", "--object-count", "12"},
                &alias_out, &err),
            1);
  EXPECT_NE(err.find("conflicts"), std::string::npos);
}

TEST(Cli, ServeProcessesJobsFile) {
  const TempDir dir;
  std::string out;
  ASSERT_EQ(run({"simulate", "--object-count", "15", "--selection-ratio",
                 "0.5", "--seed", "5", "--votes-out",
                 dir.file("votes.csv")},
                &out),
            0);
  {
    std::ofstream jobs(dir.file("jobs.jsonl"));
    jobs << "{\"id\": 1, \"votes\": \"" << dir.file("votes.csv")
         << "\", \"seed\": 2}\n";
    jobs << "{\"id\": 2, \"votes\": \"" << dir.file("votes.csv")
         << "\", \"seed\": 3, \"search\": \"taps\"}\n";
    jobs << "{\"id\": 3, \"votes\": \"" << dir.file("missing.csv")
         << "\"}\n";
  }
  // One job's votes file is missing: exit 2, but the other jobs still
  // complete and every job gets a structured result line.
  const int code = run({"serve", "--jobs", dir.file("jobs.jsonl"),
                        "--results", dir.file("results.jsonl"),
                        "--service-workers", "2", "--metrics",
                        dir.file("metrics.json")},
                       &out);
  EXPECT_EQ(code, 2);
  EXPECT_NE(out.find("2 completed"), std::string::npos);
  EXPECT_NE(out.find("1 failed"), std::string::npos);

  std::ifstream results(dir.file("results.jsonl"));
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(results, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"id\": 1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"outcome\": \"completed\""),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"outcome\": \"completed\""),
            std::string::npos);
  EXPECT_NE(lines[2].find("\"outcome\": \"failed\""), std::string::npos);
  EXPECT_TRUE(fs::exists(dir.file("metrics.json")));
}

TEST(Cli, ServeIsDeterministicAcrossServiceWorkerCounts) {
  const TempDir dir;
  std::string out;
  ASSERT_EQ(run({"simulate", "--object-count", "12", "--selection-ratio",
                 "0.6", "--seed", "8", "--votes-out",
                 dir.file("votes.csv")},
                &out),
            0);
  {
    std::ofstream jobs(dir.file("jobs.jsonl"));
    for (int k = 1; k <= 4; ++k) {
      jobs << "{\"id\": " << k << ", \"votes\": \"" << dir.file("votes.csv")
           << "\", \"seed\": " << k << "}\n";
    }
  }
  const auto results_text = [&](const std::string& workers) {
    std::string serve_out;
    EXPECT_EQ(run({"serve", "--jobs", dir.file("jobs.jsonl"), "--results",
                   dir.file("results_" + workers + ".jsonl"),
                   "--service-workers", workers},
                  &serve_out),
              0);
    std::ifstream in(dir.file("results_" + workers + ".jsonl"));
    std::ostringstream text;
    std::string line;
    // Timing fields differ run to run; compare everything before them.
    while (std::getline(in, line)) {
      text << line.substr(0, line.find(", \"queue_ms\"")) << "\n";
    }
    return text.str();
  };
  EXPECT_EQ(results_text("1"), results_text("3"));
}

TEST(Cli, ServeTelemetryWritesArtifactsAndTopRendersThem) {
  const TempDir dir;
  std::string out;
  ASSERT_EQ(run({"simulate", "--object-count", "15", "--selection-ratio",
                 "0.5", "--seed", "5", "--votes-out",
                 dir.file("votes.csv")},
                &out),
            0);
  {
    std::ofstream jobs(dir.file("jobs.jsonl"));
    jobs << "{\"id\": 1, \"votes\": \"" << dir.file("votes.csv")
         << "\", \"seed\": 2}\n";
    jobs << "{\"id\": 2, \"votes\": \"" << dir.file("votes.csv")
         << "\", \"seed\": 3, \"fail_before\": \"rank_search\", "
            "\"fail_reason\": \"drill\"}\n";
  }
  // One injected failure: serve exits 2, and the telemetry plane must
  // leave all three artifact kinds behind.
  EXPECT_EQ(run({"serve", "--jobs", dir.file("jobs.jsonl"),
                 "--service-workers", "2", "--telemetry",
                 dir.file("telemetry"), "--telemetry-period-ms", "50"},
                &out),
            2);
  EXPECT_NE(out.find("wrote telemetry to"), std::string::npos);
  const fs::path telemetry = dir.path / "telemetry";
  EXPECT_TRUE(fs::exists(telemetry / "telemetry.jsonl"));
  EXPECT_TRUE(fs::exists(telemetry / "metrics.prom"));
  EXPECT_TRUE(
      fs::exists(telemetry / "postmortems" / "job_2_failed.json"));

  // `top` renders the stream one-shot from the directory or the file.
  std::string top_out;
  EXPECT_EQ(run({"top", "--telemetry", dir.file("telemetry")}, &top_out),
            0);
  EXPECT_NE(top_out.find("jobs/s"), std::string::npos);
  EXPECT_NE(top_out.find("outcomes:"), std::string::npos);
  EXPECT_NE(top_out.find("failed 1"), std::string::npos);
  EXPECT_NE(top_out.find("hardening"), std::string::npos);
  std::string from_file;
  EXPECT_EQ(run({"top", "--telemetry",
                 (telemetry / "telemetry.jsonl").string()},
                &from_file),
            0);
  EXPECT_EQ(from_file, top_out);
}

TEST(Cli, TopReportsMissingAndEmptyTelemetry) {
  const TempDir dir;
  std::string out;
  std::string err;
  EXPECT_EQ(run({"top", "--telemetry", dir.file("nope")}, &out, &err), 1);
  EXPECT_NE(err.find("cannot open telemetry file"), std::string::npos);
  {
    std::ofstream empty(dir.file("empty.jsonl"));
  }
  EXPECT_EQ(run({"top", "--telemetry", dir.file("empty.jsonl")}, &out,
                &err),
            2);
}

TEST(Cli, IndexThenQueryServesFromArtifacts) {
  const TempDir dir;
  std::string out;
  ASSERT_EQ(run({"simulate", "--object-count", "10", "--selection-ratio",
                 "0.6", "--seed", "7", "--votes-out",
                 dir.file("votes.csv")},
                &out),
            0);

  // index ranks and persists the full artifact bundle.
  ASSERT_EQ(run({"index", "--votes", dir.file("votes.csv"), "--artifacts",
                 dir.file("bundle"), "--seed", "3"},
                &out),
            0);
  EXPECT_NE(out.find("artifact key "), std::string::npos);
  for (const char* name : {"votes.crart", "task_graph.crart",
                           "preference_graph.crart", "closure.crart"}) {
    EXPECT_TRUE(fs::exists(dir.path / "bundle" / name)) << name;
  }

  // query serves the stored result (a later invocation = fresh cache
  // instance, so the answer can only come from the disk artifacts) and
  // never runs inference.
  std::string query_out;
  ASSERT_EQ(run({"query", "--votes", dir.file("votes.csv"), "--artifacts",
                 dir.file("bundle"), "--seed", "3", "--ranking-out",
                 dir.file("query_ranking.csv")},
                &query_out),
            0);
  EXPECT_NE(query_out.find("served from artifact "), std::string::npos);

  // The served ranking matches what `infer` computes directly for the
  // same work — the cached facade answer and the engine agree end to end.
  ASSERT_EQ(run({"infer", "--votes", dir.file("votes.csv"), "--seed", "3",
                 "--ranking-out", dir.file("infer_ranking.csv")},
                &out),
            0);
  const Ranking from_query = load_ranking(dir.file("query_ranking.csv"));
  const Ranking from_infer = load_ranking(dir.file("infer_ranking.csv"));
  ASSERT_EQ(from_query.size(), from_infer.size());
  for (std::size_t p = 0; p < from_query.size(); ++p) {
    EXPECT_EQ(from_query.object_at(p), from_infer.object_at(p)) << p;
  }
}

TEST(Cli, QueryExitsNonZeroOnForcedMiss) {
  const TempDir dir;
  std::string out;
  ASSERT_EQ(run({"simulate", "--object-count", "8", "--selection-ratio",
                 "0.6", "--seed", "7", "--votes-out",
                 dir.file("votes.csv")},
                &out),
            0);
  ASSERT_EQ(run({"index", "--votes", dir.file("votes.csv"), "--artifacts",
                 dir.file("bundle"), "--seed", "3"},
                &out),
            0);
  // Different seed = different content key = no stored artifact: exit 2
  // (distinct from usage errors, which exit 1), never a silent recompute.
  EXPECT_EQ(run({"query", "--votes", dir.file("votes.csv"), "--artifacts",
                 dir.file("bundle"), "--seed", "4"},
                &out),
            2);
  EXPECT_NE(out.find("query miss"), std::string::npos);
}

TEST(Cli, ServeServesRepeatJobsFromTheCache) {
  const TempDir dir;
  std::string out;
  ASSERT_EQ(run({"simulate", "--object-count", "8", "--selection-ratio",
                 "0.6", "--seed", "5", "--votes-out",
                 dir.file("votes.csv")},
                &out),
            0);
  {
    std::ofstream jobs(dir.file("jobs.jsonl"));
    for (int id = 1; id <= 3; ++id) {
      jobs << "{\"id\": " << id << ", \"votes\": \""
           << dir.file("votes.csv") << "\", \"seed\": 2}\n";
    }
  }
  // Three identical jobs: one cold computation, two memory hits.
  ASSERT_EQ(run({"serve", "--jobs", dir.file("jobs.jsonl"),
                 "--cache-capacity", "8", "--cache-dir",
                 dir.file("cache")},
                &out),
            0);
  EXPECT_NE(out.find("cache: 2 hits (0 disk), 1 misses"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("3 completed"), std::string::npos);

  // A second serve run starts with a cold memory tier but finds all three
  // artifacts on disk — warm across restarts.
  ASSERT_EQ(run({"serve", "--jobs", dir.file("jobs.jsonl"), "--cache-dir",
                 dir.file("cache")},
                &out),
            0);
  EXPECT_NE(out.find("0 misses"), std::string::npos) << out;
  EXPECT_NE(out.find("3 completed"), std::string::npos);
}

}  // namespace
}  // namespace crowdrank::io
