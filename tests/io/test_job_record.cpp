// JSONL job-record parsing/formatting for `crowdrank serve`.
#include "io/job_record.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace crowdrank::io {
namespace {

TEST(JobRecord, ParsesFullAndMinimalLines) {
  const std::string text =
      "{\"id\": 9, \"votes\": \"a.csv\", \"object_count\": 50, "
      "\"worker_count\": 12, \"seed\": 7, \"search\": \"taps\", "
      "\"saps_iterations\": 400, \"deadline_ms\": 250}\n"
      "\n"
      "{\"votes\": \"b.csv\"}\n";
  const auto records = parse_job_records(text);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, 9u);
  EXPECT_EQ(records[0].votes_path, "a.csv");
  EXPECT_EQ(records[0].object_count, 50u);
  EXPECT_EQ(records[0].worker_count, 12u);
  EXPECT_EQ(records[0].seed, 7u);
  EXPECT_EQ(records[0].search, "taps");
  EXPECT_EQ(records[0].saps_iterations, 400u);
  EXPECT_EQ(records[0].deadline_ms, 250u);
  // Minimal record: defaults plus a line-ordinal id.
  EXPECT_EQ(records[1].id, 2u);
  EXPECT_EQ(records[1].votes_path, "b.csv");
  EXPECT_EQ(records[1].search, "saps");
  EXPECT_EQ(records[1].seed, 1u);
}

TEST(JobRecord, MalformedLinesFailWithLineNumber) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle) {
    try {
      parse_job_records(text);
      FAIL() << "expected Error for: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("{\"votes\": \"a.csv\"}\nnot json\n", "line 2");
  expect_error("{\"seed\": 3}\n", "missing required key \"votes\"");
  expect_error("{\"votes\": \"a.csv\", \"bogus\": 1}\n", "unknown key");
  expect_error("{\"votes\": \"a.csv\", \"seed\": \"x\"}\n",
               "must be a number");
  expect_error("{\"votes\": 5}\n", "must be a string path");
  expect_error("{\"votes\": \"a.csv\", \"votes\": \"b.csv\"}\n",
               "duplicate key");
  expect_error("{\"votes\": \"a.csv\"} trailing\n", "trailing content");
}

TEST(JobRecord, FormatParseRoundTrip) {
  JobRecord record;
  record.id = 3;
  record.votes_path = "dir/votes \"x\".csv";  // needs escaping
  record.object_count = 20;
  record.seed = 11;
  record.search = "heldkarp";
  record.deadline_ms = 100;
  const auto parsed = parse_job_records(format_job_record(record) + "\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].id, record.id);
  EXPECT_EQ(parsed[0].votes_path, record.votes_path);
  EXPECT_EQ(parsed[0].object_count, record.object_count);
  EXPECT_EQ(parsed[0].seed, record.seed);
  EXPECT_EQ(parsed[0].search, record.search);
  EXPECT_EQ(parsed[0].deadline_ms, record.deadline_ms);
}

TEST(JobRecord, FaultInjectionFieldsParseValidateAndRoundTrip) {
  const auto records = parse_job_records(
      "{\"votes\": \"a.csv\", \"fail_before\": \"rank_search\", "
      "\"fail_reason\": \"drill\"}\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].fail_before, "rank_search");
  EXPECT_EQ(records[0].fail_reason, "drill");

  // Unknown stage names fail loudly with the line number.
  try {
    parse_job_records("{\"votes\": \"a.csv\", \"fail_before\": \"bogus\"}\n");
    FAIL() << "expected Error for unknown stage";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown stage"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }

  JobRecord record;
  record.votes_path = "a.csv";
  record.fail_before = "smoothing";
  record.fail_reason = "game day";
  const auto parsed = parse_job_records(format_job_record(record) + "\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].fail_before, record.fail_before);
  EXPECT_EQ(parsed[0].fail_reason, record.fail_reason);
}

TEST(JobRecord, FormatsStructuredResults) {
  service::JobResult result;
  result.id = 4;
  result.outcome = service::JobOutcome::Degraded;
  result.stage = PipelineStage::Done;
  result.ranking.order = {2, 0, 1};
  result.ranking.excluded = {3};
  result.hardening.input_votes = 10;
  result.hardening.retained_votes = 8;
  result.hardening.dropped_disconnected = 2;
  result.hardening.excluded_objects = {3};
  result.log_probability = -1.5;
  const std::string line = format_job_result(result);
  EXPECT_NE(line.find("\"outcome\": \"degraded\""), std::string::npos);
  EXPECT_NE(line.find("\"stage\": \"done\""), std::string::npos);
  EXPECT_NE(line.find("\"ranking\": [2, 0, 1]"), std::string::npos);
  EXPECT_NE(line.find("\"excluded_objects\": 1"), std::string::npos);
  // Ranked outcomes can skip the (possibly long) ranking array.
  EXPECT_EQ(format_job_result(result, false).find("\"ranking\""),
            std::string::npos);

  service::JobResult failed;
  failed.id = 5;
  failed.outcome = service::JobOutcome::Failed;
  failed.stage = PipelineStage::Propagation;
  failed.reason = "injected fault";
  const std::string failed_line = format_job_result(failed);
  EXPECT_NE(failed_line.find("\"outcome\": \"failed\""), std::string::npos);
  EXPECT_NE(failed_line.find("\"stage\": \"propagation\""),
            std::string::npos);
  EXPECT_NE(failed_line.find("\"reason\": \"injected fault\""),
            std::string::npos);
  EXPECT_EQ(failed_line.find("\"ranking\""), std::string::npos);
}

}  // namespace
}  // namespace crowdrank::io
