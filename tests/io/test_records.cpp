// Unit tests for the typed CSV record formats.
#include "io/records.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace crowdrank::io {
namespace {

TEST(VoteRecords, RoundTrip) {
  const VoteBatch votes{{0, 1, 2, true}, {3, 4, 1, false}, {2, 0, 5, true}};
  const VoteBatch parsed = parse_votes(format_votes(votes));
  EXPECT_EQ(parsed, votes);
}

TEST(VoteRecords, RequiresHeader) {
  EXPECT_THROW(parse_votes("0,1,2,1\n"), Error);
  EXPECT_THROW(parse_votes(""), Error);
  EXPECT_THROW(parse_votes("a,b,c,d\n"), Error);
}

TEST(VoteRecords, ValidatesFields) {
  EXPECT_THROW(parse_votes("worker,i,j,prefers_i\nx,1,2,1\n"), Error);
  EXPECT_THROW(parse_votes("worker,i,j,prefers_i\n0,1,2,5\n"), Error);
  EXPECT_THROW(parse_votes("worker,i,j,prefers_i\n0,2,2,1\n"), Error);
  EXPECT_THROW(parse_votes("worker,i,j,prefers_i\n0,1,2\n"), Error);
  EXPECT_THROW(parse_votes("worker,i,j,prefers_i\n0,-1,2,1\n"), Error);
}

TEST(VoteRecords, EmptyBatchIsValid) {
  const VoteBatch parsed = parse_votes("worker,i,j,prefers_i\n");
  EXPECT_TRUE(parsed.empty());
}

TEST(RankingRecords, RoundTrip) {
  const Ranking r({3, 0, 2, 1});
  EXPECT_EQ(parse_ranking(format_ranking(r)), r);
}

TEST(RankingRecords, PositionsMayArriveOutOfOrder) {
  const Ranking r =
      parse_ranking("position,object\n2,0\n0,2\n1,1\n");
  EXPECT_EQ(r.object_at(0), 2u);
  EXPECT_EQ(r.object_at(2), 0u);
}

TEST(RankingRecords, Validates) {
  EXPECT_THROW(parse_ranking("position,object\n"), Error);  // no rows
  EXPECT_THROW(parse_ranking("position,object\n0,0\n0,1\n"), Error);
  EXPECT_THROW(parse_ranking("position,object\n5,0\n"), Error);
  EXPECT_THROW(parse_ranking("position,object\n0,0\n1,0\n"), Error);
  EXPECT_THROW(parse_ranking("object\n0\n"), Error);
}

TEST(TaskRecords, RoundTripCanonicalizes) {
  const std::vector<Edge> tasks{{0, 1}, {2, 5}};
  EXPECT_EQ(parse_tasks(format_tasks(tasks)), tasks);
  // Reversed input pairs are canonicalized on parse.
  const auto parsed = parse_tasks("i,j\n5,2\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], (Edge{2, 5}));
}

TEST(TaskRecords, Validates) {
  EXPECT_THROW(parse_tasks("i,j\n3,3\n"), Error);
  EXPECT_THROW(parse_tasks("i\n3\n"), Error);
}

TEST(Records, FileRoundTrips) {
  const VoteBatch votes{{0, 1, 2, true}};
  save_votes("/tmp/crowdrank_votes_test.csv", votes);
  EXPECT_EQ(load_votes("/tmp/crowdrank_votes_test.csv"), votes);

  const Ranking r({1, 0});
  save_ranking("/tmp/crowdrank_ranking_test.csv", r);
  EXPECT_EQ(load_ranking("/tmp/crowdrank_ranking_test.csv"), r);

  const std::vector<Edge> tasks{{0, 3}};
  save_tasks("/tmp/crowdrank_tasks_test.csv", tasks);
  EXPECT_EQ(load_tasks("/tmp/crowdrank_tasks_test.csv"), tasks);
}

}  // namespace
}  // namespace crowdrank::io
