// Unit tests for the CLI argument parser.
#include "io/args.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace crowdrank::io {
namespace {

Args make(std::initializer_list<const char*> tokens,
          const std::set<std::string>& options,
          const std::set<std::string>& flags = {}) {
  std::vector<const char*> argv{"prog", "cmd"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args(static_cast<int>(argv.size()), argv.data(), 2, options, flags);
}

TEST(Args, ParsesOptionsAndPositionals) {
  const Args args = make({"--objects", "50", "extra"}, {"objects"});
  EXPECT_TRUE(args.has("objects"));
  EXPECT_EQ(args.get_size("objects", 0), 50u);
  ASSERT_EQ(args.positionals().size(), 1u);
  EXPECT_EQ(args.positionals()[0], "extra");
}

TEST(Args, FlagsNeedNoValue) {
  const Args args = make({"--verbose", "--objects", "3"}, {"objects"},
                         {"verbose"});
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_FALSE(args.flag("quiet"));
}

TEST(Args, UnknownOptionThrows) {
  EXPECT_THROW(make({"--bogus", "1"}, {"objects"}), Error);
}

TEST(Args, MissingValueThrows) {
  EXPECT_THROW(make({"--objects"}, {"objects"}), Error);
}

TEST(Args, TypedAccessorsWithDefaults) {
  const Args args = make({"--ratio", "0.25", "--seed", "7"},
                         {"ratio", "seed", "name"});
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 0.25);
  EXPECT_EQ(args.get_seed("seed", 0), 7u);
  EXPECT_EQ(args.get_string("name", "default"), "default");
  EXPECT_DOUBLE_EQ(args.get_double("missing-is-fallback", 1.5), 1.5);
}

TEST(Args, InvalidNumbersThrow) {
  const Args a = make({"--objects", "abc"}, {"objects"});
  EXPECT_THROW(a.get_size("objects", 0), Error);
  const Args b = make({"--ratio", "0.5x"}, {"ratio"});
  EXPECT_THROW(b.get_double("ratio", 0.0), Error);
}

TEST(Args, RequiredAccessors) {
  const Args args = make({"--objects", "9"}, {"objects", "votes"});
  EXPECT_EQ(args.require_size("objects"), 9u);
  EXPECT_THROW(args.require_size("votes"), Error);
  EXPECT_THROW(args.require_string("votes"), Error);
}

TEST(Args, AliasesRewriteOntoCanonicalKeys) {
  const std::map<std::string, std::string> aliases{
      {"objects", "object-count"}, {"quick", "fast"}};
  std::vector<const char*> argv{"prog", "cmd", "--objects", "50",
                                "--quick"};
  const Args args(static_cast<int>(argv.size()), argv.data(), 2,
                  {"object-count"}, {"fast"}, aliases);
  EXPECT_TRUE(args.has("object-count"));
  EXPECT_EQ(args.get_size("object-count", 0), 50u);
  EXPECT_FALSE(args.has("objects"));  // only the canonical key exists
  EXPECT_TRUE(args.flag("fast"));
}

TEST(Args, AliasConflictingWithCanonicalThrows) {
  const std::map<std::string, std::string> aliases{
      {"objects", "object-count"}};
  std::vector<const char*> argv{"prog",           "cmd", "--object-count",
                                "10",             "--objects", "12"};
  EXPECT_THROW(Args(static_cast<int>(argv.size()), argv.data(), 2,
                    {"object-count"}, {}, aliases),
               Error);
}

}  // namespace
}  // namespace crowdrank::io
