// Unit tests for the QuickSort Condorcet baseline (§VI-A2, ref [18]).
#include "baselines/quicksort_rank.hpp"

#include <gtest/gtest.h>

#include "metrics/kendall.hpp"

namespace crowdrank {
namespace {

Vote vote(WorkerId k, VertexId i, VertexId j, bool prefers_i) {
  return Vote{k, i, j, prefers_i};
}

/// Unanimous all-pairs votes for the given truth.
VoteBatch all_pairs_votes(const Ranking& truth, std::size_t replicas) {
  VoteBatch votes;
  const std::size_t n = truth.size();
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      const bool fwd = truth.position_of(i) < truth.position_of(j);
      for (WorkerId k = 0; k < replicas; ++k) {
        votes.push_back(vote(k, i, j, fwd));
      }
    }
  }
  return votes;
}

TEST(QuickSort, FullCoverageRecoversTruthExactly) {
  Rng rng(1);
  const auto perm = rng.permutation(12);
  const Ranking truth(std::vector<VertexId>(perm.begin(), perm.end()));
  const VoteBatch votes = all_pairs_votes(truth, 3);
  for (int trial = 0; trial < 5; ++trial) {
    Rng sort_rng(trial);
    const Ranking r = quicksort_ranking(votes, 12, sort_rng);
    EXPECT_EQ(r, truth) << "trial " << trial;
  }
}

TEST(QuickSort, SingleObjectAndPair) {
  Rng rng(2);
  const Ranking one = quicksort_ranking({}, 1, rng);
  EXPECT_EQ(one.size(), 1u);
  const VoteBatch votes{vote(0, 1, 0, true)};
  const Ranking two = quicksort_ranking(votes, 2, rng);
  EXPECT_EQ(two.object_at(0), 1u);
}

TEST(QuickSort, MissingPairsDegradeAccuracy) {
  // With only a sliver of pairs voted, unvoted comparisons are coin flips
  // and QS accuracy collapses toward 0.5 — the Table-I shape.
  Rng rng(3);
  const std::size_t n = 40;
  const auto perm = rng.permutation(n);
  const Ranking truth(std::vector<VertexId>(perm.begin(), perm.end()));
  VoteBatch votes;
  for (int e = 0; e < 40; ++e) {  // ~5% of pairs
    const auto pick = rng.sample_without_replacement(n, 2);
    const bool fwd = truth.position_of(pick[0]) < truth.position_of(pick[1]);
    votes.push_back(vote(0, pick[0], pick[1], fwd));
  }
  double acc = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    Rng sort_rng(200 + t);
    acc += ranking_accuracy(truth, quicksort_ranking(votes, n, sort_rng));
  }
  acc /= trials;
  EXPECT_GT(acc, 0.4);
  EXPECT_LT(acc, 0.75);
}

TEST(QuickSort, MajorityDecidesConflicts) {
  VoteBatch votes;
  for (WorkerId k = 0; k < 5; ++k) votes.push_back(vote(k, 0, 1, true));
  for (WorkerId k = 5; k < 7; ++k) votes.push_back(vote(k, 0, 1, false));
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng(trial);
    const Ranking r = quicksort_ranking(votes, 2, rng);
    EXPECT_EQ(r.object_at(0), 0u);
  }
}

TEST(QuickSort, AlwaysReturnsValidPermutation) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    VoteBatch votes;
    for (int e = 0; e < 30; ++e) {
      const auto pick = rng.sample_without_replacement(25, 2);
      votes.push_back(vote(0, pick[0], pick[1], rng.bernoulli(0.5)));
    }
    const Ranking r = quicksort_ranking(votes, 25, rng);
    EXPECT_EQ(r.size(), 25u);  // Ranking ctor enforces permutation
  }
}

}  // namespace
}  // namespace crowdrank
