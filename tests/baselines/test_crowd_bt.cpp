// Unit tests for the CrowdBT interactive baseline (§VI-A2, ref [7]).
#include "baselines/crowd_bt.hpp"

#include <gtest/gtest.h>

#include "metrics/kendall.hpp"
#include "util/error.hpp"

namespace crowdrank {
namespace {

SimulatedCrowd make_crowd(const Ranking& truth, std::size_t workers,
                          double sigma) {
  std::vector<WorkerProfile> pool;
  for (WorkerId k = 0; k < workers; ++k) {
    pool.push_back(WorkerProfile{k, sigma});
  }
  return SimulatedCrowd(truth, std::move(pool));
}

TEST(CrowdBt, OfflinePassOnCleanVotesRecoversOrder) {
  VoteBatch votes;
  for (int round = 0; round < 10; ++round) {
    for (VertexId i = 0; i < 6; ++i) {
      for (VertexId j = i + 1; j < 6; ++j) {
        votes.push_back(Vote{static_cast<WorkerId>(round % 3), i, j, true});
      }
    }
  }
  const auto result = crowd_bt_offline(votes, 6, 3, {});
  EXPECT_EQ(result.ranking, Ranking::identity(6));
  EXPECT_EQ(result.answers_used, votes.size());
  // Skill means must be strictly decreasing along the true order.
  for (VertexId v = 0; v + 1 < 6; ++v) {
    EXPECT_GT(result.mu[v], result.mu[v + 1]);
  }
}

TEST(CrowdBt, ConsistentWorkersGainQuality) {
  VoteBatch votes;
  for (int round = 0; round < 20; ++round) {
    votes.push_back(Vote{0, 0, 1, true});   // consistent
    votes.push_back(Vote{1, 0, 1, false});  // contrarian
    votes.push_back(Vote{2, 0, 1, true});
  }
  const auto result = crowd_bt_offline(votes, 2, 3, {});
  EXPECT_GT(result.eta[0], result.eta[1]);
  EXPECT_GT(result.eta[2], result.eta[1]);
}

TEST(CrowdBt, InteractiveStopsAtBudget) {
  Rng rng(1);
  const Ranking truth = Ranking::identity(10);
  const auto crowd = make_crowd(truth, 5, 0.05);
  const BudgetModel budget = BudgetModel::for_unique_tasks(40, 0.025, 2);
  InteractiveCrowd oracle(crowd, budget, rng);
  const auto result = crowd_bt_interactive(oracle, 10, 5, {}, rng);
  EXPECT_EQ(result.answers_used, 80u);  // l * w answers
  EXPECT_FALSE(oracle.can_query());
  EXPECT_EQ(result.ranking.size(), 10u);
}

TEST(CrowdBt, InteractiveLearnsWithGoodWorkers) {
  Rng rng(2);
  const std::size_t n = 12;
  Rng truth_rng(3);
  const auto perm = truth_rng.permutation(n);
  const Ranking truth(std::vector<VertexId>(perm.begin(), perm.end()));
  const auto crowd = make_crowd(truth, 8, 0.02);
  // Generous budget: ~4x all pairs.
  const BudgetModel budget = BudgetModel::for_unique_tasks(264, 0.025, 1);
  InteractiveCrowd oracle(crowd, budget, rng);
  const auto result = crowd_bt_interactive(oracle, n, 8, {}, rng);
  EXPECT_GT(ranking_accuracy(truth, result.ranking), 0.85);
}

TEST(CrowdBt, SampledActiveLearningAlsoLearns) {
  Rng rng(4);
  const std::size_t n = 15;
  const Ranking truth = Ranking::identity(n);
  const auto crowd = make_crowd(truth, 6, 0.05);
  const BudgetModel budget = BudgetModel::for_unique_tasks(300, 0.025, 1);
  InteractiveCrowd oracle(crowd, budget, rng);
  CrowdBtConfig config;
  config.candidate_sample_size = 30;
  const auto result = crowd_bt_interactive(oracle, n, 6, config, rng);
  EXPECT_GT(ranking_accuracy(truth, result.ranking), 0.8);
}

TEST(CrowdBt, VarianceShrinksWithEvidence) {
  VoteBatch votes;
  for (int round = 0; round < 50; ++round) {
    votes.push_back(Vote{0, 0, 1, true});
  }
  CrowdBtConfig config;
  const auto result = crowd_bt_offline(votes, 3, 1, config);
  // Objects 0 and 1 were measured heavily; 2 never.
  EXPECT_LT(result.sigma2[0], config.initial_sigma2);
  EXPECT_DOUBLE_EQ(result.sigma2[2], config.initial_sigma2);
  EXPECT_GE(result.sigma2[0], config.min_sigma2);
}

TEST(CrowdBt, Validates) {
  EXPECT_THROW(crowd_bt_offline({}, 3, 1, {}), Error);
  CrowdBtConfig bad;
  bad.initial_sigma2 = 0.0;
  EXPECT_THROW(crowd_bt_offline({Vote{0, 0, 1, true}}, 2, 1, bad), Error);
  bad = {};
  bad.prior_alpha = 0.0;
  EXPECT_THROW(crowd_bt_offline({Vote{0, 0, 1, true}}, 2, 1, bad), Error);
  EXPECT_THROW(crowd_bt_offline({Vote{9, 0, 1, true}}, 2, 1, {}), Error);
}

}  // namespace
}  // namespace crowdrank
