// Unit tests for the majority-vote substrate and Copeland ranking.
#include "baselines/majority_vote.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace crowdrank {
namespace {

Vote vote(WorkerId k, VertexId i, VertexId j, bool prefers_i) {
  return Vote{k, i, j, prefers_i};
}

TEST(VoteTally, CountsDirectedWins) {
  const VoteBatch votes{vote(0, 0, 1, true), vote(1, 0, 1, true),
                        vote(2, 0, 1, false), vote(0, 1, 2, false)};
  const Matrix tally = vote_tally(votes, 3);
  EXPECT_DOUBLE_EQ(tally(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(tally(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(tally(2, 1), 1.0);  // "prefers_i false" on (1,2)
  EXPECT_DOUBLE_EQ(tally(1, 2), 0.0);
}

TEST(VoteTally, RejectsBadObjects) {
  EXPECT_THROW(vote_tally({vote(0, 0, 9, true)}, 3), Error);
}

TEST(MajorityDirection, ThreeOutcomes) {
  Matrix tally(2, 2, 0.0);
  tally(0, 1) = 3.0;
  tally(1, 0) = 1.0;
  EXPECT_EQ(majority_direction(tally, 0, 1), 1);
  EXPECT_EQ(majority_direction(tally, 1, 0), -1);
  Matrix tie(2, 2, 0.0);
  EXPECT_EQ(majority_direction(tie, 0, 1), 0);
}

TEST(MajorityVoteRanking, RecoversCleanOrder) {
  // Unanimous votes consistent with 2 < 0 < 1.
  VoteBatch votes;
  for (WorkerId k = 0; k < 3; ++k) {
    votes.push_back(vote(k, 2, 0, true));
    votes.push_back(vote(k, 0, 1, true));
    votes.push_back(vote(k, 2, 1, true));
  }
  const Ranking r = majority_vote_ranking(votes, 3);
  EXPECT_EQ(r.object_at(0), 2u);
  EXPECT_EQ(r.object_at(1), 0u);
  EXPECT_EQ(r.object_at(2), 1u);
}

TEST(MajorityVoteRanking, OutvotedMinorityIgnored) {
  VoteBatch votes;
  for (WorkerId k = 0; k < 5; ++k) {
    votes.push_back(vote(k, 0, 1, true));
  }
  votes.push_back(vote(5, 0, 1, false));
  votes.push_back(vote(6, 0, 1, false));
  const Ranking r = majority_vote_ranking(votes, 2);
  EXPECT_EQ(r.object_at(0), 0u);
}

TEST(MajorityVoteRanking, UnvotedObjectsFallToIdOrder) {
  const VoteBatch votes{vote(0, 2, 3, true)};
  const Ranking r = majority_vote_ranking(votes, 5);
  // 2 beats 3; 0, 1, 4 have score 0 and sort by id among themselves.
  EXPECT_LT(r.position_of(2), r.position_of(3));
  EXPECT_EQ(r.size(), 5u);
}

}  // namespace
}  // namespace crowdrank
