// Unit tests for the plain Bradley-Terry MM baseline.
#include "baselines/bradley_terry.hpp"

#include <gtest/gtest.h>

#include "metrics/kendall.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

Vote vote(WorkerId k, VertexId i, VertexId j, bool prefers_i) {
  return Vote{k, i, j, prefers_i};
}

TEST(BradleyTerry, CleanChainRecovered) {
  VoteBatch votes;
  for (WorkerId k = 0; k < 5; ++k) {
    for (VertexId i = 0; i < 5; ++i) {
      for (VertexId j = i + 1; j < 5; ++j) {
        votes.push_back(vote(k, i, j, true));  // identity order
      }
    }
  }
  const Ranking r = bradley_terry_ranking(votes, 5);
  EXPECT_EQ(r, Ranking::identity(5));
}

TEST(BradleyTerry, SkillsNormalizedToMeanOne) {
  VoteBatch votes{vote(0, 0, 1, true), vote(1, 0, 1, true),
                  vote(2, 1, 2, true)};
  const auto fit = fit_bradley_terry(votes, 3);
  double sum = 0.0;
  for (const double g : fit.skills) {
    EXPECT_GT(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum / 3.0, 1.0, 1e-9);
}

TEST(BradleyTerry, ConvergesOnSmallInput) {
  VoteBatch votes;
  Rng rng(1);
  for (int e = 0; e < 50; ++e) {
    const auto pick = rng.sample_without_replacement(8, 2);
    votes.push_back(vote(0, pick[0], pick[1], pick[0] < pick[1]));
  }
  const auto fit = fit_bradley_terry(votes, 8);
  EXPECT_TRUE(fit.converged);
  EXPECT_LT(fit.iterations, 500u);
}

TEST(BradleyTerry, WinRatioOrdersSkills) {
  // 0 beats 1 in 8/10 votes; skill(0) > skill(1).
  VoteBatch votes;
  for (int v = 0; v < 8; ++v) votes.push_back(vote(0, 0, 1, true));
  for (int v = 0; v < 2; ++v) votes.push_back(vote(0, 0, 1, false));
  const auto fit = fit_bradley_terry(votes, 2);
  EXPECT_GT(fit.skills[0], fit.skills[1]);
  // MLE for a single pair: gamma0/gamma1 ~= 8/2 (prior slightly shrinks).
  EXPECT_NEAR(fit.skills[0] / fit.skills[1], 4.0, 0.5);
}

TEST(BradleyTerry, UncomparedObjectsKeepNeutralSkill) {
  const VoteBatch votes{vote(0, 0, 1, true)};
  const auto fit = fit_bradley_terry(votes, 4);
  EXPECT_NEAR(fit.skills[2], fit.skills[3], 1e-12);
}

TEST(BradleyTerry, NoisyTournamentStillWellCorrelated) {
  Rng rng(2);
  const std::size_t n = 20;
  const auto perm = rng.permutation(n);
  const Ranking truth(std::vector<VertexId>(perm.begin(), perm.end()));
  VoteBatch votes;
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      for (WorkerId k = 0; k < 3; ++k) {
        const bool fwd = truth.position_of(i) < truth.position_of(j);
        const bool flip = rng.bernoulli(0.15);
        votes.push_back(vote(k, i, j, flip ? !fwd : fwd));
      }
    }
  }
  const Ranking r = bradley_terry_ranking(votes, n);
  EXPECT_GT(ranking_accuracy(truth, r), 0.85);
}

TEST(BradleyTerry, Validates) {
  EXPECT_THROW(fit_bradley_terry({}, 1), Error);
  BradleyTerryConfig bad;
  bad.prior_pseudo_wins = -1.0;
  EXPECT_THROW(fit_bradley_terry({vote(0, 0, 1, true)}, 2, bad), Error);
}

}  // namespace
}  // namespace crowdrank
