// Unit tests for the local Kemenization baseline.
#include "baselines/local_kemeny.hpp"

#include <gtest/gtest.h>

#include "baselines/majority_vote.hpp"
#include "metrics/kendall.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

Vote vote(WorkerId k, VertexId i, VertexId j, bool prefers_i) {
  return Vote{k, i, j, prefers_i};
}

TEST(KemenyDisagreement, CountsContradictingMass) {
  // Tally: 3 votes 0<1, 1 vote 1<0.
  Matrix tally(2, 2, 0.0);
  tally(0, 1) = 3.0;
  tally(1, 0) = 1.0;
  EXPECT_DOUBLE_EQ(kemeny_disagreement(tally, Ranking({0, 1})), 1.0);
  EXPECT_DOUBLE_EQ(kemeny_disagreement(tally, Ranking({1, 0})), 3.0);
}

TEST(KemenyDisagreement, Validates) {
  Matrix rect(2, 3);
  EXPECT_THROW(kemeny_disagreement(rect, Ranking({0, 1})), Error);
  Matrix small(2, 2);
  EXPECT_THROW(kemeny_disagreement(small, Ranking({0, 1, 2})), Error);
}

TEST(LocalKemenize, FixesAdjacentInversions) {
  // Evidence strongly supports 0 < 1 < 2 but the seed is reversed.
  Matrix evidence(3, 3, 0.0);
  evidence(0, 1) = evidence(1, 2) = evidence(0, 2) = 5.0;
  const Ranking repaired = local_kemenize(evidence, Ranking({2, 1, 0}));
  EXPECT_EQ(repaired, Ranking::identity(3));
}

TEST(LocalKemenize, NeverIncreasesDisagreement) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 10;
    Matrix evidence(n, n, 0.0);
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = 0; j < n; ++j) {
        if (i != j) evidence(i, j) = rng.uniform(0.0, 5.0);
      }
    }
    const auto seed_perm = rng.permutation(n);
    const Ranking seed(
        std::vector<VertexId>(seed_perm.begin(), seed_perm.end()));
    const Ranking repaired = local_kemenize(evidence, seed);
    EXPECT_LE(kemeny_disagreement(evidence, repaired),
              kemeny_disagreement(evidence, seed) + 1e-12);
    // Local optimality: no adjacent swap can improve further.
    for (std::size_t p = 0; p + 1 < n; ++p) {
      const VertexId u = repaired.object_at(p);
      const VertexId v = repaired.object_at(p + 1);
      EXPECT_LE(evidence(v, u), evidence(u, v) + 1e-12);
    }
  }
}

TEST(LocalKemenize, RespectsUnanimousEvidenceCompletely) {
  // Unanimous all-pairs votes: the repaired ranking equals the truth.
  Rng rng(2);
  const std::size_t n = 12;
  const auto perm = rng.permutation(n);
  const Ranking truth(std::vector<VertexId>(perm.begin(), perm.end()));
  VoteBatch votes;
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      votes.push_back(vote(0, i, j,
                           truth.position_of(i) < truth.position_of(j)));
    }
  }
  EXPECT_EQ(local_kemeny_ranking(votes, n), truth);
}

TEST(LocalKemenize, ImprovesNoisyCopelandSeed) {
  Rng rng(3);
  const std::size_t n = 30;
  const auto perm = rng.permutation(n);
  const Ranking truth(std::vector<VertexId>(perm.begin(), perm.end()));
  VoteBatch votes;
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      for (WorkerId k = 0; k < 3; ++k) {
        const bool fwd = truth.position_of(i) < truth.position_of(j);
        votes.push_back(vote(k, i, j, rng.bernoulli(0.2) ? !fwd : fwd));
      }
    }
  }
  const Matrix tally = vote_tally(votes, n);
  const Ranking seed = majority_vote_ranking(votes, n);
  const Ranking polished = local_kemenize(tally, seed);
  EXPECT_LE(kemeny_disagreement(tally, polished),
            kemeny_disagreement(tally, seed));
  EXPECT_GT(ranking_accuracy(truth, polished), 0.85);
}

}  // namespace
}  // namespace crowdrank
