// Unit tests for the RepeatChoice baseline (§VI-A2, ref [17]).
#include "baselines/repeat_choice.hpp"

#include <gtest/gtest.h>

#include "metrics/kendall.hpp"
#include "util/error.hpp"

namespace crowdrank {
namespace {

Vote vote(WorkerId k, VertexId i, VertexId j, bool prefers_i) {
  return Vote{k, i, j, prefers_i};
}

TEST(WorkerPartialRanking, CopelandBuckets) {
  // Worker 0 saw a clean chain 0 < 1 < 2: scores 2, 0, -2.
  const VoteBatch votes{vote(0, 0, 1, true), vote(0, 1, 2, true),
                        vote(0, 0, 2, true)};
  const PartialRanking pr = worker_partial_ranking(votes, 0, 4);
  ASSERT_EQ(pr.tie_groups.size(), 3u);
  EXPECT_EQ(pr.tie_groups[0], std::vector<VertexId>{0});
  EXPECT_EQ(pr.tie_groups[1], std::vector<VertexId>{1});
  EXPECT_EQ(pr.tie_groups[2], std::vector<VertexId>{2});
}

TEST(WorkerPartialRanking, UnseenObjectsAbsent) {
  const VoteBatch votes{vote(0, 0, 1, true), vote(1, 2, 3, true)};
  const PartialRanking pr = worker_partial_ranking(votes, 0, 4);
  std::size_t covered = 0;
  for (const auto& g : pr.tie_groups) covered += g.size();
  EXPECT_EQ(covered, 2u);  // only 0 and 1
}

TEST(RepeatChoice, FullInputsRecoverConsensus) {
  // Three workers each provide the same full chain as a partial ranking.
  PartialRanking chain;
  chain.tie_groups = {{3}, {1}, {0}, {2}};
  Rng rng(1);
  const Ranking r = repeat_choice({chain, chain, chain}, 4, rng);
  EXPECT_EQ(r.object_at(0), 3u);
  EXPECT_EQ(r.object_at(1), 1u);
  EXPECT_EQ(r.object_at(2), 0u);
  EXPECT_EQ(r.object_at(3), 2u);
}

TEST(RepeatChoice, LaterInputsRefineTies) {
  // First input splits {0,1,2,3} into {0,1} before {2,3}; second orders
  // within each pair.
  PartialRanking coarse;
  coarse.tie_groups = {{0, 1}, {2, 3}};
  PartialRanking fine;
  fine.tie_groups = {{1}, {0}, {3}, {2}};
  Rng rng(2);
  const Ranking r = repeat_choice({coarse, fine}, 4, rng);
  // Regardless of processing order the result must respect both inputs
  // where they are consistent: coarse's class split and fine's in-class
  // order.
  EXPECT_LT(r.position_of(1), r.position_of(0));
  EXPECT_LT(r.position_of(3), r.position_of(2));
}

TEST(RepeatChoice, NoInputsRandomFullRanking) {
  Rng rng(3);
  const Ranking r = repeat_choice({}, 6, rng);
  EXPECT_EQ(r.size(), 6u);  // random but valid (Ranking ctor validates)
}

TEST(RepeatChoice, FromVotesProducesValidRanking) {
  VoteBatch votes;
  for (WorkerId k = 0; k < 4; ++k) {
    votes.push_back(vote(k, 0, 1, true));
    votes.push_back(vote(k, 1, 2, true));
  }
  Rng rng(4);
  const Ranking r = repeat_choice_from_votes(votes, 5, 4, rng);
  EXPECT_EQ(r.size(), 5u);
  EXPECT_LT(r.position_of(0), r.position_of(1));
}

TEST(RepeatChoice, SparseCoverageIsNearRandom) {
  // The Table-I behaviour: when each worker sees a sliver of the objects,
  // RC cannot do much better than chance.
  Rng rng(5);
  const std::size_t n = 60;
  const auto perm = rng.permutation(n);
  const Ranking truth(std::vector<VertexId>(perm.begin(), perm.end()));
  VoteBatch votes;
  // 30 workers, each votes on 3 random disjoint-ish pairs, always correct.
  for (WorkerId k = 0; k < 30; ++k) {
    for (int p = 0; p < 3; ++p) {
      const auto pick = rng.sample_without_replacement(n, 2);
      const VertexId i = pick[0];
      const VertexId j = pick[1];
      const bool fwd = truth.position_of(i) < truth.position_of(j);
      votes.push_back(vote(k, i, j, fwd));
    }
  }
  double acc = 0.0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    Rng trial_rng(100 + t);
    acc += ranking_accuracy(truth, repeat_choice_from_votes(votes, n, 30,
                                                            trial_rng));
  }
  acc /= trials;
  EXPECT_LT(acc, 0.75);  // nowhere near the pipeline's accuracy
  EXPECT_GT(acc, 0.35);  // but not anti-correlated either
}

TEST(RepeatChoice, ValidatesInputs) {
  Rng rng(6);
  PartialRanking bad;
  bad.tie_groups = {{9}};
  EXPECT_THROW(repeat_choice({bad}, 3, rng), Error);
}

}  // namespace
}  // namespace crowdrank
